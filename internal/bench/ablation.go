package bench

import (
	"fmt"
	"time"

	"parapll/internal/cluster"
	"parapll/internal/core"
	"parapll/internal/gen"
	"parapll/internal/graph"
	"parapll/internal/label"
	"parapll/internal/landmark"
	"parapll/internal/order"
	"parapll/internal/pll"
	"parapll/internal/stats"
)

// RunAblations measures the design choices DESIGN.md calls out, on one
// power-law and one road graph scaled by cfg.Scale:
//
//   - label store: lock-free published-length vs. global RWMutex
//   - heap: indexed 4-ary decrease-key vs. lazy binary
//   - ordering: degree vs. ψ-sampling vs. random (by index size)
//   - dynamic chunk size: 1 vs. 8 vs. 64
//   - inter-node partition: round-robin vs. blocks vs. random (by work skew)
//   - exact PLL vs. approximate 16-landmark index (build time, size)
func RunAblations(cfg Config, threads int) (*Table, error) {
	t := &Table{
		Title:  "Ablations: each design choice vs its alternative (time in seconds; see metric column)",
		Header: []string{"graph", "ablation", "variant", "seconds", "metric", "value"},
	}
	social, err := gen.FindRecipe("Epinions")
	if err != nil {
		return nil, err
	}
	road, err := gen.FindRecipe("DE-USA")
	if err != nil {
		return nil, err
	}
	for _, rec := range []gen.Recipe{social, road} {
		g := rec.Generate(cfg.Scale)
		ord := graph.DegreeOrder(g)

		// Store ablation.
		var idx *label.Index
		lockfree := timed(func() {
			idx = core.Build(g, core.Options{Threads: threads, Policy: core.Dynamic, Order: ord})
		})
		t.AddRow(rec.Name, "store", "lock-free", stats.FormatDuration(lockfree),
			"entries", fmt.Sprint(idx.NumEntries()))
		rwmutex := timed(func() {
			store := core.NewRWLockedStore(g.NumVertices())
			core.BuildInto(g, store, core.Options{Threads: threads, Policy: core.Dynamic, Order: ord})
			idx = store.Finalize()
		})
		t.AddRow(rec.Name, "store", "rwmutex", stats.FormatDuration(rwmutex),
			"entries", fmt.Sprint(idx.NumEntries()))

		// Heap ablation (serial, isolating the queue cost).
		indexed := timed(func() { idx = pll.Build(g, pll.Options{Order: ord}) })
		t.AddRow(rec.Name, "heap", "indexed-4ary", stats.FormatDuration(indexed),
			"entries", fmt.Sprint(idx.NumEntries()))
		lazy := timed(func() { idx = pll.Build(g, pll.Options{Order: ord, LazyHeap: true}) })
		t.AddRow(rec.Name, "heap", "lazy-binary", stats.FormatDuration(lazy),
			"entries", fmt.Sprint(idx.NumEntries()))

		// Ordering ablation (index size is the quantity that matters).
		for _, o := range []struct {
			name string
			ord  []graph.Vertex
		}{
			{"degree", ord},
			{"psi", order.PsiSample(g, 8, 1)},
			{"random", order.Random(g, 1)},
		} {
			var d time.Duration
			d = timed(func() { idx = pll.Build(g, pll.Options{Order: o.ord}) })
			t.AddRow(rec.Name, "order", o.name, stats.FormatDuration(d),
				"entries", fmt.Sprint(idx.NumEntries()))
		}

		// Dynamic chunk size.
		for _, chunk := range []int{1, 8, 64} {
			d := timed(func() {
				idx = core.Build(g, core.Options{Threads: threads, Policy: core.Dynamic, Order: ord, Chunk: chunk})
			})
			t.AddRow(rec.Name, "chunk", fmt.Sprint(chunk), stats.FormatDuration(d),
				"entries", fmt.Sprint(idx.NumEntries()))
		}

		// Partition skew on a 4-node simulated cluster.
		for _, p := range []cluster.Partition{
			cluster.PartitionRoundRobin, cluster.PartitionBlocks, cluster.PartitionRandom,
		} {
			var skew float64
			d := timed(func() {
				_, sts, err2 := cluster.RunLocal(g, 4, cluster.Options{
					Threads: 1, SyncCount: 1, Partition: p, Seed: 7, Order: ord,
				})
				if err2 != nil {
					err = err2
					return
				}
				var max, sum int64
				for _, s := range sts {
					sum += s.WorkOps
					if s.WorkOps > max {
						max = s.WorkOps
					}
				}
				skew = float64(max) * 4 / float64(sum)
			})
			if err != nil {
				return nil, err
			}
			t.AddRow(rec.Name, "partition", p.String(), stats.FormatDuration(d),
				"work-skew", fmt.Sprintf("%.2f", skew))
		}

		// Exact index vs approximate landmarks.
		dPLL := timed(func() {
			idx = core.Build(g, core.Options{Threads: threads, Policy: core.Dynamic, Order: ord})
		})
		t.AddRow(rec.Name, "exactness", "parapll-exact", stats.FormatDuration(dPLL),
			"entries", fmt.Sprint(idx.NumEntries()))
		var lm *landmark.Index
		dLM := timed(func() {
			lm = landmark.Build(g, landmark.Options{K: 16, Strategy: landmark.SelectDegree, Threads: threads})
		})
		// Mean relative overestimate of the landmark upper bound.
		rng := gen.NewRNG(7)
		var relErr float64
		var count int
		n := g.NumVertices()
		for i := 0; i < 500; i++ {
			s, u := graph.Vertex(rng.Intn(n)), graph.Vertex(rng.Intn(n))
			exact := idx.Query(s, u)
			approx := lm.Upper(s, u)
			if exact != graph.Inf && exact > 0 {
				relErr += float64(approx-exact) / float64(exact)
				count++
			}
		}
		if count > 0 {
			relErr /= float64(count)
		}
		t.AddRow(rec.Name, "exactness", "landmark-16-approx", stats.FormatDuration(dLM),
			"mean-rel-overestimate", fmt.Sprintf("%.3f", relErr))
	}
	return t, nil
}
