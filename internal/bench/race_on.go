//go:build race

package bench

// raceEnabled reports whether the race detector is compiled in. The
// serve benchmark's zero-allocation assertion is skipped under it: the
// detector's shadow bookkeeping allocates on paths the real binary
// does not.
const raceEnabled = true
