package bench

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	"parapll/internal/core"
)

// smokeConfig keeps the whole experiment grid tiny so tests stay fast.
func smokeConfig() Config {
	return Config{
		Scale:      0.005,
		Datasets:   []string{"Wiki-Vote", "Gnutella"},
		Threads:    []int{1, 2},
		Nodes:      []int{1, 2},
		SyncCounts: []int{1, 4},
		Queries:    20,
	}
}

// parseFloatCell asserts a table cell parses as a float.
func parseFloatCell(t *testing.T, table *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(table.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric: %v", row, col, table.Rows[row][col], err)
	}
	return v
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig(1.0)
	if cfg.Scale != 1.0 || len(cfg.Threads) != 7 || len(cfg.Nodes) != 6 || len(cfg.SyncCounts) != 8 {
		t.Fatalf("unexpected default config %+v", cfg)
	}
}

func TestUnknownDatasetRejected(t *testing.T) {
	cfg := smokeConfig()
	cfg.Datasets = []string{"NoSuchGraph"}
	if _, err := RunTable3(cfg); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestRunTable3And4(t *testing.T) {
	cfg := smokeConfig()
	for name, run := range map[string]func(Config) (*Table, error){
		"table3": RunTable3,
		"table4": RunTable4,
	} {
		t.Run(name, func(t *testing.T) {
			table, err := run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			wantRows := len(cfg.Datasets) * len(cfg.Threads)
			if len(table.Rows) != wantRows {
				t.Fatalf("rows = %d, want %d", len(table.Rows), wantRows)
			}
			for r := range table.Rows {
				if sp := parseFloatCell(t, table, r, 7); sp <= 0 {
					t.Fatalf("row %d wall speedup %v not positive", r, sp)
				}
				if sp := parseFloatCell(t, table, r, 8); sp <= 0 {
					t.Fatalf("row %d projected speedup %v not positive", r, sp)
				}
				if ln := parseFloatCell(t, table, r, 9); ln < 1 {
					t.Fatalf("row %d LN %v < 1 (every vertex labels itself)", r, ln)
				}
			}
			// The 1-thread row's speedups are exactly 1 by definition.
			if sp := parseFloatCell(t, table, 0, 7); sp != 1.0 {
				t.Fatalf("baseline wall speedup = %v, want 1.00", sp)
			}
			if sp := parseFloatCell(t, table, 0, 8); sp != 1.0 {
				t.Fatalf("baseline projected speedup = %v, want 1.00", sp)
			}
			// Projected speedup with 2 threads cannot exceed 2 by more
			// than rounding; it reflects real load balance.
			if sp := parseFloatCell(t, table, 1, 8); sp > 2.05 {
				t.Fatalf("2-thread projected speedup %v > 2", sp)
			}
		})
	}
}

func TestRunTable5(t *testing.T) {
	table, err := RunTable5(smokeConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smokeConfig()
	if want := len(cfg.Datasets) * len(cfg.Nodes); len(table.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(table.Rows), want)
	}
	for r := range table.Rows {
		parseFloatCell(t, table, r, 2) // static IT
		parseFloatCell(t, table, r, 4) // dynamic IT
		if ln := parseFloatCell(t, table, r, 6); ln < 1 {
			t.Fatalf("row %d LN %v < 1", r, ln)
		}
	}
}

func TestRunFig5(t *testing.T) {
	table, err := RunFig5(smokeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) == 0 {
		t.Fatal("no CCDF rows")
	}
	// CCDF values in (0,1]; first row of each dataset is 1.0.
	for r := range table.Rows {
		v := parseFloatCell(t, table, r, 2)
		if v <= 0 || v > 1 {
			t.Fatalf("row %d CCDF %v out of (0,1]", r, v)
		}
	}
}

func TestRunFig6(t *testing.T) {
	table, err := RunFig6(smokeConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	variants := map[string]bool{}
	for _, row := range table.Rows {
		variants[row[1]] = true
		v, _ := strconv.ParseFloat(row[3], 64)
		if v < 0 || v > 1 {
			t.Fatalf("CDF value %v out of range", v)
		}
	}
	for _, want := range []string{"pll", "parapll-static", "parapll-dynamic"} {
		if !variants[want] {
			t.Fatalf("variant %s missing from figure 6 data", want)
		}
	}
	// Per (dataset,variant), CDF must be non-decreasing in x and end at 1.
	last := map[string]float64{}
	for _, row := range table.Rows {
		key := row[0] + "/" + row[1]
		v, _ := strconv.ParseFloat(row[3], 64)
		if v+1e-9 < last[key] {
			t.Fatalf("CDF decreased for %s", key)
		}
		last[key] = v
	}
	for key, v := range last {
		if v < 0.999 {
			t.Fatalf("CDF for %s ends at %v, want 1", key, v)
		}
	}
}

func TestRunFig7(t *testing.T) {
	table, err := RunFig7(smokeConfig(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smokeConfig()
	if want := len(cfg.Datasets) * len(cfg.SyncCounts); len(table.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(table.Rows), want)
	}
	// Label size must not grow when syncing more (Figure 7(b)).
	for i := 0; i+1 < len(table.Rows); i += len(cfg.SyncCounts) {
		first := parseFloatCell(t, table, i, 5) // c=1
		lastRow := i + len(cfg.SyncCounts) - 1
		lastLN := parseFloatCell(t, table, lastRow, 5) // c=max
		if lastLN > first+0.5 {
			t.Fatalf("LN grew with more syncs: c=1 -> %.1f, c=max -> %.1f", first, lastLN)
		}
	}
}

func TestRunSync(t *testing.T) {
	cfg := smokeConfig()
	table, results, err := RunSync(cfg, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := len(cfg.Datasets) * len(cfg.SyncCounts) * 2 // blocking + overlapped
	if len(table.Rows) != want || len(results) != want {
		t.Fatalf("rows=%d results=%d, want %d", len(table.Rows), len(results), want)
	}
	overlapSeen := map[bool]bool{}
	for i, r := range results {
		overlapSeen[r.Overlap] = true
		if r.WallSeconds <= 0 || r.Entries <= 0 || r.AvgLabel < 1 {
			t.Fatalf("result %d implausible: %+v", i, r)
		}
		if r.UpdatesSent <= 0 || r.WireBytes <= 0 {
			t.Fatalf("result %d has no sync volume: %+v", i, r)
		}
		if r.RawBytes != r.UpdatesSent*12 {
			t.Fatalf("result %d raw bytes %d != 12 * %d updates", i, r.RawBytes, r.UpdatesSent)
		}
		if r.Compression <= 1 {
			t.Fatalf("result %d compression %v not > 1", i, r.Compression)
		}
	}
	if !overlapSeen[false] || !overlapSeen[true] {
		t.Fatal("missing blocking or overlapped results")
	}
	var buf bytes.Buffer
	if err := WriteSyncJSON(&buf, results); err != nil {
		t.Fatal(err)
	}
	var back []SyncResult
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("BENCH_sync.json does not round-trip: %v", err)
	}
	if len(back) != len(results) || back[0] != results[0] {
		t.Fatal("JSON round-trip lost data")
	}
}

func TestRunQueryComparison(t *testing.T) {
	table, err := RunQueryComparison(smokeConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for r := range table.Rows {
		if mb := parseFloatCell(t, table, r, 2); mb <= 0 {
			t.Fatalf("row %d: non-positive index memory %v", r, mb)
		}
		dij := parseFloatCell(t, table, r, 3)
		q := parseFloatCell(t, table, r, 5)
		if q <= 0 || dij <= 0 {
			t.Fatalf("row %d: non-positive latencies", r)
		}
		// The entire point of the paper: indexed queries are much faster.
		if q > dij {
			t.Fatalf("row %d: indexed query (%.3fus) slower than Dijkstra (%.3fus)", r, q, dij)
		}
	}
}

func TestSimulateMakespan(t *testing.T) {
	works := []int64{10, 1, 1, 1}
	// Static round-robin, p=2: worker0 = 10+1 = 11, worker1 = 1+1 = 2.
	if ms := simulateMakespan(works, 2, core.Static); ms != 11 {
		t.Fatalf("static makespan = %d, want 11", ms)
	}
	// Dynamic greedy: 10 -> w0; 1,1,1 -> w1: makespan 10.
	if ms := simulateMakespan(works, 2, core.Dynamic); ms != 10 {
		t.Fatalf("dynamic makespan = %d, want 10", ms)
	}
	// One worker: both policies serialize.
	if simulateMakespan(works, 1, core.Static) != 13 || simulateMakespan(works, 1, core.Dynamic) != 13 {
		t.Fatal("p=1 makespan wrong")
	}
	// p clamped to >= 1; empty works -> 0.
	if simulateMakespan(nil, 0, core.Dynamic) != 0 {
		t.Fatal("empty works makespan wrong")
	}
	// The paper's headline claim in miniature: dynamic never loses to
	// static on a skewed workload.
	skewed := []int64{100, 90, 1, 1, 1, 1, 80, 1}
	for _, p := range []int{2, 3, 4} {
		if simulateMakespan(skewed, p, core.Dynamic) > simulateMakespan(skewed, p, core.Static) {
			t.Fatalf("p=%d: dynamic makespan worse than static", p)
		}
	}
}

func TestRunAblations(t *testing.T) {
	cfg := smokeConfig()
	table, err := RunAblations(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Every ablation family must appear for both graphs.
	seen := map[string]int{}
	for _, row := range table.Rows {
		seen[row[1]]++
		parseFloatCell(t, table, 0, 3) // seconds parse
	}
	for _, want := range []string{"store", "heap", "order", "chunk", "partition", "exactness"} {
		if seen[want] < 2 {
			t.Errorf("ablation %q appears %d times, want >= 2", want, seen[want])
		}
	}
}

func TestTableRendering(t *testing.T) {
	table := &Table{Title: "T", Header: []string{"a", "bb"}}
	table.AddRow("1", "2")
	table.AddRow("333", "4")
	var txt bytes.Buffer
	if err := table.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	out := txt.String()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "333") {
		t.Fatalf("text render missing content:\n%s", out)
	}
	var csvBuf bytes.Buffer
	if err := table.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	if got := csvBuf.String(); got != "a,bb\n1,2\n333,4\n" {
		t.Fatalf("csv = %q", got)
	}
}

func TestAddRowValidatesArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	table := &Table{Header: []string{"a", "b"}}
	table.AddRow("only-one")
}

func TestLogPoints(t *testing.T) {
	pts := logPoints(1000)
	if pts[0] != 0 || pts[len(pts)-1] != 999 {
		t.Fatalf("endpoints wrong: %v", pts)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i] <= pts[i-1] {
			t.Fatal("logPoints not strictly increasing")
		}
	}
	if logPoints(0) != nil {
		t.Fatal("logPoints(0) should be nil")
	}
	if got := logPoints(1); len(got) != 1 || got[0] != 0 {
		t.Fatalf("logPoints(1) = %v", got)
	}
}
