// Package oracle defines the one query surface every distance index in
// this repository serves. Four index implementations answer the paper's
// QUERY(s,t,L): the undirected 2-hop index (label.Index, including its
// mmap-backed form), the directed in/out-label index (directed.Index),
// the insert-maintained dynamic index (dynamic.Index), and the
// path-augmented index (pathidx.Index). Server, bench and the CLIs
// program against this interface instead of the four concrete types, so
// a serving deployment can swap index kinds — or swap a heap-decoded
// index for a zero-copy mmap one — without touching call sites.
package oracle

import (
	"parapll/internal/directed"
	"parapll/internal/dynamic"
	"parapll/internal/graph"
	"parapll/internal/label"
	"parapll/internal/pathidx"
)

// Oracle answers exact point-to-point distance queries over a fixed
// vertex set [0, NumVertices). Implementations are safe for concurrent
// queries (dynamic.Index additionally requires that no InsertEdge runs
// while queries are in flight). Out-of-range ids panic — uniformly,
// including for s == t (label.Index documents a descriptive message);
// callers fronting untrusted input must validate against NumVertices
// first, as the HTTP server and CLIs do.
type Oracle interface {
	// NumVertices returns the size of the indexed vertex set.
	NumVertices() int
	// Query returns the exact distance between s and t, graph.Inf when
	// the pair is disconnected. For directed indexes this is d(s→t).
	Query(s, t graph.Vertex) graph.Dist
	// QueryWithHub also reports the meeting hub achieving the minimum
	// (-1 for disconnected pairs; (0, s) for s == t).
	QueryWithHub(s, t graph.Vertex) (graph.Dist, graph.Vertex)
	// QueryBatch answers many pairs, fanning out over `threads`
	// goroutines (<= 0 means GOMAXPROCS).
	QueryBatch(pairs [][2]graph.Vertex, threads int) []graph.Dist
}

// Updatable is an Oracle whose underlying graph accepts edge
// insertions while queries keep running against the repaired index —
// the seam the living-graph pipeline (WAL logging, background
// compaction) is built behind. InsertEdge must reject invalid edges
// with an error (dynamic.ErrInvalid's contract: self loops,
// out-of-range endpoints, weights outside (0, Inf)) and must leave the
// index exact for the enlarged edge set on success. Implementations
// define their own query/insert concurrency contract; dynamic.Index is
// single-writer, which the compact.Pipeline wrapper turns into a
// reader/writer-locked surface safe for concurrent HTTP traffic.
type Updatable interface {
	Oracle
	InsertEdge(u, v graph.Vertex, w graph.Dist) error
}

// Every index implementation must satisfy the interface; a missing or
// drifted method is a compile error here, not a runtime surprise.
var (
	_ Oracle = (*label.Index)(nil)
	_ Oracle = (*directed.Index)(nil)
	_ Oracle = (*dynamic.Index)(nil)
	_ Oracle = (*pathidx.Index)(nil)

	_ Updatable = (*dynamic.Index)(nil)
)
