package pll

import (
	"parapll/internal/graph"
	"parapll/internal/label"
)

// BuildUnweighted indexes g with the original unweighted PLL of Akiba et
// al.: a pruned BFS per root, ignoring edge weights (every edge counts 1).
// Queries against the resulting index return hop counts. Included as the
// historical baseline the paper generalizes from ("a parallel version of
// PLL has been proposed [but] cannot be used for weighted graphs").
func BuildUnweighted(g *graph.Graph, opt Options) *label.Index {
	n := g.NumVertices()
	ord := opt.Order
	if ord == nil {
		ord = graph.DegreeOrder(g)
	} else if len(ord) != n {
		panic("pll: Order must be a permutation of the vertices")
	}
	if opt.Trace != nil {
		opt.Trace.alloc(n)
	}

	labels := make([][]label.Entry, n)
	dist := make([]graph.Dist, n)
	tmp := make([]graph.Dist, n)
	for i := 0; i < n; i++ {
		dist[i] = graph.Inf
		tmp[i] = graph.Inf
	}
	queue := make([]graph.Vertex, 0, n)
	var touched, hubs []graph.Vertex

	for k, r := range ord {
		var added, pruned, work int64
		for _, e := range labels[r] {
			if e.D < tmp[e.Hub] {
				tmp[e.Hub] = e.D
			}
			hubs = append(hubs, e.Hub)
		}
		dist[r] = 0
		touched = append(touched, r)
		queue = append(queue[:0], r)
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			d := dist[u]
			work += 1 + int64(len(labels[u]))
			if CoveredBy(labels[u], tmp, d) {
				pruned++
				continue
			}
			labels[u] = append(labels[u], label.Entry{Hub: r, D: d})
			added++
			ns, _ := g.Neighbors(u)
			work += int64(len(ns))
			for _, v := range ns {
				if dist[v] == graph.Inf {
					dist[v] = d + 1
					touched = append(touched, v)
					queue = append(queue, v)
				}
			}
		}
		for _, v := range touched {
			dist[v] = graph.Inf
		}
		touched = touched[:0]
		for _, h := range hubs {
			tmp[h] = graph.Inf
		}
		hubs = hubs[:0]
		if opt.Trace != nil {
			opt.Trace.AddedPerRoot[k] = added
			opt.Trace.PrunedPerRoot[k] = pruned
			opt.Trace.WorkPerRoot[k] = work
		}
	}
	return label.NewIndexFromLists(labels)
}
