package pll

import (
	"math/rand"
	"testing"

	"parapll/internal/gen"
	"parapll/internal/graph"
	"parapll/internal/sssp"
)

// TestBitParallelMasksExact verifies the mask invariants directly:
// bit i of Bm1(v) ⇔ dist(S_i,v) = dist(r,v)−1, bit i of B0(v) ⇔ equal.
func TestBitParallelMasksExact(t *testing.T) {
	r := rand.New(rand.NewSource(700))
	for trial := 0; trial < 20; trial++ {
		n := 8 + r.Intn(40)
		g := randomGraph(r, n, 2*n)
		root := graph.Vertex(r.Intn(n))
		ns, _ := g.Neighbors(root)
		var S []graph.Vertex
		for _, v := range ns {
			if len(S) == 64 {
				break
			}
			S = append(S, v)
		}
		bp := bitParallelBFS(g, root, S)
		rootDist := sssp.BFS(g, root)
		var selDist [][]graph.Dist
		for _, si := range S {
			selDist = append(selDist, sssp.BFS(g, si))
		}
		for v := 0; v < n; v++ {
			if bp.labels[v].d != rootDist[v] {
				t.Fatalf("trial %d: d(%d) = %d, want %d", trial, v, bp.labels[v].d, rootDist[v])
			}
			if rootDist[v] == graph.Inf {
				continue
			}
			for i := range S {
				wantM1 := selDist[i][v] == rootDist[v]-1
				wantB0 := selDist[i][v] == rootDist[v]
				gotM1 := bp.labels[v].bm1&(1<<uint(i)) != 0
				gotB0 := bp.labels[v].b0&(1<<uint(i)) != 0
				if gotM1 != wantM1 || gotB0 != wantB0 {
					t.Fatalf("trial %d v=%d S_%d: masks (m1=%v,b0=%v), want (%v,%v) [d(r,v)=%d d(S_i,v)=%d]",
						trial, v, i, gotM1, gotB0, wantM1, wantB0, rootDist[v], selDist[i][v])
				}
			}
		}
	}
}

// TestBPIndexExact is the decisive check: the combined bit-parallel +
// pruned-BFS index answers every pair with the exact hop count.
func TestBPIndexExact(t *testing.T) {
	r := rand.New(rand.NewSource(701))
	for trial := 0; trial < 10; trial++ {
		n := 10 + r.Intn(50)
		g := randomGraph(r, n, 3*n)
		for _, roots := range []int{0, 1, 4} {
			x := BuildUnweightedBP(g, roots, Options{})
			for s := graph.Vertex(0); int(s) < n; s++ {
				want := sssp.BFS(g, s)
				for u := graph.Vertex(0); int(u) < n; u++ {
					if got := x.Query(s, u); got != want[u] {
						t.Fatalf("trial %d roots=%d: query(%d,%d) = %d, want %d",
							trial, roots, s, u, got, want[u])
					}
				}
			}
		}
	}
}

// TestBPShrinksOrdinaryLabels reproduces the optimization's purpose: on
// hub-heavy graphs the bit-parallel layer absorbs the hubs, leaving far
// fewer ordinary label entries than plain unweighted PLL.
func TestBPShrinksOrdinaryLabels(t *testing.T) {
	g := gen.ChungLu(1500, 9000, 2.1, 33)
	plain := BuildUnweighted(g, Options{})
	bp := BuildUnweightedBP(g, 8, Options{})
	if bp.NumBPRoots() != 8 {
		t.Fatalf("got %d BP roots, want 8", bp.NumBPRoots())
	}
	if bp.LabelEntries() >= plain.NumEntries() {
		t.Fatalf("BP ordinary labels %d not smaller than plain %d",
			bp.LabelEntries(), plain.NumEntries())
	}
	t.Logf("plain %d entries -> BP %d ordinary entries (%.1fx smaller)",
		plain.NumEntries(), bp.LabelEntries(),
		float64(plain.NumEntries())/float64(bp.LabelEntries()))
}

func TestBPDisconnected(t *testing.T) {
	g := graph.FromEdges(5, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 1}})
	x := BuildUnweightedBP(g, 2, Options{})
	if d := x.Query(0, 3); d != graph.Inf {
		t.Fatalf("cross-component = %d, want Inf", d)
	}
	if d := x.Query(0, 1); d != 1 {
		t.Fatalf("d(0,1) = %d, want 1", d)
	}
	if d := x.Query(4, 4); d != 0 {
		t.Fatalf("self = %d", d)
	}
}

func TestBPZeroRootsEqualsPlain(t *testing.T) {
	r := rand.New(rand.NewSource(702))
	g := randomGraph(r, 40, 80)
	plain := BuildUnweighted(g, Options{})
	bp := BuildUnweightedBP(g, 0, Options{})
	if bp.LabelEntries() != plain.NumEntries() {
		t.Fatalf("0-root BP has %d entries, plain has %d", bp.LabelEntries(), plain.NumEntries())
	}
}

func TestBPMoreRootsThanVertices(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 1}})
	x := BuildUnweightedBP(g, 100, Options{})
	want := sssp.BFS(g, 0)
	for u := graph.Vertex(0); u < 4; u++ {
		if got := x.Query(0, u); got != want[u] {
			t.Fatalf("query(0,%d) = %d, want %d", u, got, want[u])
		}
	}
}

func BenchmarkBPvsPlainUnweighted(b *testing.B) {
	g := gen.ChungLu(3000, 15000, 2.1, 34)
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			BuildUnweighted(g, Options{})
		}
	})
	b.Run("bp-16", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			BuildUnweightedBP(g, 16, Options{})
		}
	})
}
