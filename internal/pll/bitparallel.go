package pll

import (
	"parapll/internal/graph"
	"parapll/internal/label"
)

// Bit-parallel labels — the signature optimization of the original
// unweighted PLL (Akiba, Iwata, Yoshida, SIGMOD 2013 §4.2), included
// here because ParaPLL builds directly on that framework. One
// bit-parallel BFS from a root r simultaneously tracks up to 64 of r's
// neighbors S_r in machine words: every vertex v stores
//
//	d(v)       = dist(r, v)
//	Bm1(v) bit i set ⇔ dist(S_i, v) = d(v) − 1
//	B0(v)  bit i set ⇔ dist(S_i, v) = d(v)
//
// (dist(S_i, v) ∈ {d(v)−1, d(v), d(v)+1} by the triangle inequality, so
// two masks suffice). A query through r then costs three AND/ORs and
// covers 1+|S_r| landmarks at once:
//
//	dist(s,t) ≤ d(s)+d(t)−2  if Bm1(s) ∧ Bm1(t) ≠ 0
//	dist(s,t) ≤ d(s)+d(t)−1  if (Bm1(s) ∧ B0(t)) ∨ (B0(s) ∧ Bm1(t)) ≠ 0
//	dist(s,t) ≤ d(s)+d(t)    always (through r itself)
//
// Each bound is the length of a real path, so using them to prune the
// subsequent pruned BFSes is safe for the same reason Proposition 1
// makes stale labels safe.

// bpLabel is one vertex's entry for one bit-parallel root.
type bpLabel struct {
	d   graph.Dist
	bm1 uint64
	b0  uint64
}

// bpRoot holds the per-vertex labels of one bit-parallel BFS.
type bpRoot struct {
	labels []bpLabel // indexed by vertex
}

// BPIndex is an unweighted 2-hop index with a bit-parallel first layer:
// queries take the minimum of the bit-parallel bounds and the ordinary
// label merge. Build with BuildUnweightedBP.
type BPIndex struct {
	roots []bpRoot
	idx   *label.Index
}

// bpQuery returns the best bit-parallel upper bound for (s,t).
func (x *BPIndex) bpQuery(s, t graph.Vertex) graph.Dist {
	best := graph.Inf
	for i := range x.roots {
		ls := x.roots[i].labels[s]
		lt := x.roots[i].labels[t]
		if ls.d == graph.Inf || lt.d == graph.Inf {
			continue
		}
		d := graph.AddDist(ls.d, lt.d)
		if ls.bm1&lt.bm1 != 0 {
			d -= 2
		} else if ls.bm1&lt.b0 != 0 || ls.b0&lt.bm1 != 0 {
			d -= 1
		}
		if d < best {
			best = d
		}
	}
	return best
}

// Query returns the exact hop distance between s and t.
func (x *BPIndex) Query(s, t graph.Vertex) graph.Dist {
	if s == t {
		return 0
	}
	best := x.bpQuery(s, t)
	if d := x.idx.Query(s, t); d < best {
		best = d
	}
	return best
}

// NumBPRoots returns how many bit-parallel roots the index holds.
func (x *BPIndex) NumBPRoots() int { return len(x.roots) }

// LabelEntries returns the number of ordinary (non-bit-parallel) label
// entries — the quantity the bit-parallel layer exists to shrink.
func (x *BPIndex) LabelEntries() int64 { return x.idx.NumEntries() }

// bitParallelBFS runs one bit-parallel BFS from root r over selection S
// (|S| <= 64, all neighbors of r). used marks vertices already consumed
// as roots/selections by earlier BP iterations; they still participate
// in the BFS (they are ordinary vertices of the graph).
func bitParallelBFS(g *graph.Graph, r graph.Vertex, S []graph.Vertex) bpRoot {
	n := g.NumVertices()
	out := bpRoot{labels: make([]bpLabel, n)}
	for v := range out.labels {
		out.labels[v].d = graph.Inf
	}
	// Plain BFS for distances, recording the level order.
	levelOf := out.labels
	order := make([]graph.Vertex, 0, n)
	levelOf[r].d = 0
	order = append(order, r)
	for head := 0; head < len(order); head++ {
		u := order[head]
		ns, _ := g.Neighbors(u)
		for _, v := range ns {
			if levelOf[v].d == graph.Inf {
				levelOf[v].d = levelOf[u].d + 1
				order = append(order, v)
			}
		}
	}
	// Seed the selected neighbors: d(S_i, S_i) = 0 = d(r,S_i) − 1.
	for i, si := range S {
		out.labels[si].bm1 |= uint64(1) << uint(i)
	}
	// Propagate masks strictly level by level; within level δ, first the
	// intra-level pass (B0(u) ← Bm1(v) for same-level neighbors — this
	// completes B0 at δ, whose Bm1 was completed by the previous level's
	// inter-level pass), then the inter-level pass to δ+1
	// (Bm1(u) ← Bm1(v), B0(u) ← B0(v)). Finally B0 excludes bits that
	// also made Bm1: a landmark sits at one distance, and the sharper
	// claim wins.
	for lo := 0; lo < len(order); {
		hi := lo
		d := out.labels[order[lo]].d
		for hi < len(order) && out.labels[order[hi]].d == d {
			hi++
		}
		for _, v := range order[lo:hi] {
			bm1 := out.labels[v].bm1
			if bm1 == 0 {
				continue
			}
			ns, _ := g.Neighbors(v)
			for _, u := range ns {
				if out.labels[u].d == d {
					out.labels[u].b0 |= bm1
				}
			}
		}
		for _, v := range order[lo:hi] {
			lv := out.labels[v]
			if lv.bm1 == 0 && lv.b0 == 0 {
				continue
			}
			ns, _ := g.Neighbors(v)
			for _, u := range ns {
				if out.labels[u].d == d+1 {
					out.labels[u].bm1 |= lv.bm1
					out.labels[u].b0 |= lv.b0
				}
			}
		}
		lo = hi
	}
	for v := range out.labels {
		out.labels[v].b0 &^= out.labels[v].bm1
	}
	return out
}

// BuildUnweightedBP builds an unweighted PLL index whose first nRoots
// searches are bit-parallel BFSes (each covering a root plus up to 64 of
// its neighbors), followed by ordinary pruned BFSes that additionally
// prune against the bit-parallel bounds. With hub-heavy graphs this
// shrinks the ordinary label lists dramatically at a fixed
// 20·nRoots·n-byte cost. opt.Order applies to the pruned-BFS phase;
// opt.Trace is not supported here.
func BuildUnweightedBP(g *graph.Graph, nRoots int, opt Options) *BPIndex {
	n := g.NumVertices()
	if nRoots < 0 {
		nRoots = 0
	}
	ord := opt.Order
	if ord == nil {
		ord = graph.DegreeOrder(g)
	} else if len(ord) != n {
		panic("pll: Order must be a permutation of the vertices")
	}

	x := &BPIndex{}
	used := make([]bool, n)
	// Pick bit-parallel roots by degree; their selections are unused
	// neighbors, so each BP search retires up to 65 would-be hubs.
	for _, r := range ord {
		if len(x.roots) >= nRoots {
			break
		}
		if used[r] {
			continue
		}
		used[r] = true
		var S []graph.Vertex
		ns, _ := g.Neighbors(r)
		for _, v := range ns {
			if len(S) == 64 {
				break
			}
			if !used[v] {
				used[v] = true
				S = append(S, v)
			}
		}
		x.roots = append(x.roots, bitParallelBFS(g, r, S))
	}

	// Ordinary pruned BFS over every vertex (including used ones: their
	// pairs are only covered when a shortest path passes the BP root
	// region, which the prune test checks per pair), pruning against
	// both the bit-parallel bounds and the normal cover.
	labels := make([][]label.Entry, n)
	dist := make([]graph.Dist, n)
	tmp := make([]graph.Dist, n)
	for i := 0; i < n; i++ {
		dist[i] = graph.Inf
		tmp[i] = graph.Inf
	}
	queue := make([]graph.Vertex, 0, n)
	var touched, hubs []graph.Vertex
	for _, r := range ord {
		for _, e := range labels[r] {
			if e.D < tmp[e.Hub] {
				tmp[e.Hub] = e.D
			}
			hubs = append(hubs, e.Hub)
		}
		dist[r] = 0
		touched = append(touched, r)
		queue = append(queue[:0], r)
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			d := dist[u]
			if x.bpQuery(r, u) <= d || CoveredBy(labels[u], tmp, d) {
				continue
			}
			labels[u] = append(labels[u], label.Entry{Hub: r, D: d})
			ns, _ := g.Neighbors(u)
			for _, v := range ns {
				if dist[v] == graph.Inf {
					dist[v] = d + 1
					touched = append(touched, v)
					queue = append(queue, v)
				}
			}
		}
		for _, v := range touched {
			dist[v] = graph.Inf
		}
		touched = touched[:0]
		for _, h := range hubs {
			tmp[h] = graph.Inf
		}
		hubs = hubs[:0]
	}
	x.idx = label.NewIndexFromLists(labels)
	return x
}
