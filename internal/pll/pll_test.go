package pll

import (
	"math/rand"
	"reflect"
	"testing"

	"parapll/internal/gen"
	"parapll/internal/graph"
	"parapll/internal/order"
	"parapll/internal/sssp"
)

func randomGraph(r *rand.Rand, n, extra int) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1+extra)
	for v := 1; v < n; v++ {
		edges = append(edges, graph.Edge{
			U: graph.Vertex(r.Intn(v)), V: graph.Vertex(v), W: graph.Dist(1 + r.Intn(40)),
		})
	}
	for i := 0; i < extra; i++ {
		edges = append(edges, graph.Edge{
			U: graph.Vertex(r.Intn(n)), V: graph.Vertex(r.Intn(n)), W: graph.Dist(1 + r.Intn(40)),
		})
	}
	return graph.FromEdges(n, edges)
}

// checkAllPairs validates every pair against Dijkstra ground truth.
func checkAllPairs(t *testing.T, g *graph.Graph, query func(s, u graph.Vertex) graph.Dist) {
	t.Helper()
	n := g.NumVertices()
	for s := graph.Vertex(0); int(s) < n; s++ {
		want := sssp.Dijkstra(g, s)
		for u := graph.Vertex(0); int(u) < n; u++ {
			if got := query(s, u); got != want[u] {
				t.Fatalf("query(%d,%d) = %d, want %d", s, u, got, want[u])
			}
		}
	}
}

func TestBuildTriangle(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1, W: 5}, {U: 1, V: 2, W: 7}, {U: 0, V: 2, W: 20}})
	x := Build(g, Options{})
	checkAllPairs(t, g, x.Query)
}

func TestBuildCorrectRandom(t *testing.T) {
	r := rand.New(rand.NewSource(100))
	for trial := 0; trial < 12; trial++ {
		g := randomGraph(r, 10+r.Intn(50), 60)
		x := Build(g, Options{})
		checkAllPairs(t, g, x.Query)
	}
}

func TestBuildLazyHeapMatchesIndexed(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	for trial := 0; trial < 6; trial++ {
		g := randomGraph(r, 40, 80)
		a := Build(g, Options{})
		b := Build(g, Options{LazyHeap: true})
		if !reflect.DeepEqual(a, b) {
			t.Fatal("lazy-heap build differs from indexed-heap build")
		}
	}
}

func TestBuildDisconnected(t *testing.T) {
	g := graph.FromEdges(6, []graph.Edge{
		{U: 0, V: 1, W: 2}, {U: 1, V: 2, W: 3},
		{U: 3, V: 4, W: 4},
	})
	x := Build(g, Options{})
	checkAllPairs(t, g, x.Query)
	if d := x.Query(0, 5); d != graph.Inf {
		t.Fatalf("isolated vertex distance = %d, want Inf", d)
	}
}

func TestBuildAnyOrderCorrect(t *testing.T) {
	// Correctness must not depend on the computing sequence — only label
	// size does (Proposition 2 is about efficiency, not correctness).
	r := rand.New(rand.NewSource(102))
	g := randomGraph(r, 35, 70)
	for seed := uint64(0); seed < 4; seed++ {
		x := Build(g, Options{Order: order.Random(g, seed)})
		checkAllPairs(t, g, x.Query)
	}
}

func TestDegreeOrderPrunesBetterThanRandom(t *testing.T) {
	// Proposition 2's premise on a hub-heavy graph: good order -> smaller
	// index. Use a power-law graph where the effect is strong.
	g := gen.ChungLu(600, 2400, 2.2, 7)
	deg := Build(g, Options{})
	rnd := Build(g, Options{Order: order.Random(g, 1)})
	if deg.NumEntries() >= rnd.NumEntries() {
		t.Errorf("degree order (%d entries) should beat random order (%d entries)",
			deg.NumEntries(), rnd.NumEntries())
	}
}

func TestBuildOrderValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for short order")
		}
	}()
	g := randomGraph(rand.New(rand.NewSource(1)), 5, 5)
	Build(g, Options{Order: []graph.Vertex{0, 1}})
}

func TestTrace(t *testing.T) {
	r := rand.New(rand.NewSource(103))
	g := randomGraph(r, 50, 100)
	var tr Trace
	x := Build(g, Options{Trace: &tr})
	if len(tr.AddedPerRoot) != g.NumVertices() {
		t.Fatalf("trace length %d, want %d", len(tr.AddedPerRoot), g.NumVertices())
	}
	var sum int64
	for _, a := range tr.AddedPerRoot {
		sum += a
	}
	// NewIndexFromLists dedupes, but serial PLL never creates duplicate
	// (vertex,hub) pairs, so totals must match exactly.
	if sum != x.NumEntries() {
		t.Fatalf("trace sum %d != index entries %d", sum, x.NumEntries())
	}
	// First root labels its whole reachable component (nothing to prune).
	if tr.AddedPerRoot[0] <= 1 {
		t.Errorf("first root added %d labels, expected many", tr.AddedPerRoot[0])
	}
	// Pruning must kick in: later roots add fewer labels on average.
	n := len(tr.AddedPerRoot)
	var early, late int64
	for i := 0; i < n/4; i++ {
		early += tr.AddedPerRoot[i]
	}
	for i := 3 * n / 4; i < n; i++ {
		late += tr.AddedPerRoot[i]
	}
	if late > early {
		t.Errorf("late roots added more labels (%d) than early roots (%d); pruning broken?", late, early)
	}
}

func TestIndexSmallerThanAPSP(t *testing.T) {
	// The whole point of pruning: far fewer than n^2/2 entries.
	g := gen.ChungLu(400, 1600, 2.2, 9)
	x := Build(g, Options{})
	full := int64(g.NumVertices()) * int64(g.NumVertices())
	if x.NumEntries()*4 > full {
		t.Errorf("index has %d entries, more than a quarter of n^2 = %d", x.NumEntries(), full)
	}
}

// TestSerialLabelDistancesExact: in the serial build every label entry
// (h, d) ∈ L(v) records the true distance dist(h, v) — serial pruned
// Dijkstra never writes an overestimate (each labeled vertex is reached
// through non-pruned vertices only; see the package doc of core for why
// the parallel version may differ).
func TestSerialLabelDistancesExact(t *testing.T) {
	r := rand.New(rand.NewSource(105))
	for trial := 0; trial < 5; trial++ {
		g := randomGraph(r, 40, 80)
		x := Build(g, Options{})
		truth := make([][]graph.Dist, g.NumVertices())
		for s := 0; s < g.NumVertices(); s++ {
			truth[s] = sssp.Dijkstra(g, graph.Vertex(s))
		}
		for v := graph.Vertex(0); int(v) < g.NumVertices(); v++ {
			hubs, dists := x.Label(v)
			for i, h := range hubs {
				if dists[i] != truth[h][v] {
					t.Fatalf("label (%d in L(%d)) records %d, true dist %d",
						h, v, dists[i], truth[h][v])
				}
			}
		}
	}
}

func TestBuildEmptyAndSingle(t *testing.T) {
	if x := Build(graph.FromEdges(0, nil), Options{}); x.NumVertices() != 0 {
		t.Fatal("empty build wrong")
	}
	x := Build(graph.FromEdges(1, nil), Options{})
	if d := x.Query(0, 0); d != 0 {
		t.Fatalf("single vertex self query = %d", d)
	}
}

func TestBuildUnweightedHopCounts(t *testing.T) {
	r := rand.New(rand.NewSource(104))
	for trial := 0; trial < 8; trial++ {
		g := randomGraph(r, 10+r.Intn(40), 50)
		x := BuildUnweighted(g, Options{})
		n := g.NumVertices()
		for s := graph.Vertex(0); int(s) < n; s++ {
			want := sssp.BFS(g, s)
			for u := graph.Vertex(0); int(u) < n; u++ {
				if got := x.Query(s, u); got != want[u] {
					t.Fatalf("unweighted query(%d,%d) = %d, want %d", s, u, got, want[u])
				}
			}
		}
	}
}

func TestBuildUnweightedTrace(t *testing.T) {
	g := gen.ErdosRenyi(100, 300, 5)
	var tr Trace
	x := BuildUnweighted(g, Options{Trace: &tr})
	var sum int64
	for _, a := range tr.AddedPerRoot {
		sum += a
	}
	if sum != x.NumEntries() {
		t.Fatalf("trace sum %d != entries %d", sum, x.NumEntries())
	}
}

func TestBuildUnweightedOrderValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BuildUnweighted(graph.FromEdges(3, nil), Options{Order: []graph.Vertex{0}})
}

func TestWeightedVsUnweightedDiffer(t *testing.T) {
	// On a weighted triangle where the heavy direct edge is not the
	// shortest path, hop count and distance must disagree.
	g := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1, W: 10}, {U: 1, V: 2, W: 10}, {U: 0, V: 2, W: 100}})
	w := Build(g, Options{})
	u := BuildUnweighted(g, Options{})
	if w.Query(0, 2) != 20 {
		t.Fatalf("weighted d(0,2) = %d, want 20", w.Query(0, 2))
	}
	if u.Query(0, 2) != 1 {
		t.Fatalf("unweighted d(0,2) = %d, want 1 hop", u.Query(0, 2))
	}
}

func BenchmarkBuildSerial(b *testing.B) {
	for _, name := range []string{"Wiki-Vote", "Gnutella"} {
		rec, _ := gen.FindRecipe(name)
		g := rec.Generate(0.05)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Build(g, Options{})
			}
		})
	}
}

func TestBuildOrderValidationDuplicates(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(2)), 5, 5)
	for name, ord := range map[string][]graph.Vertex{
		"duplicate":    {0, 1, 2, 3, 3},
		"out-of-range": {0, 1, 2, 3, 5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Build accepted corrupt order", name)
				}
			}()
			Build(g, Options{Order: ord})
		}()
	}
}
