// Package pll implements the serial weighted Pruned Landmark Labeling
// baseline — the paper's "weighted serial version" (§4.1, Algorithm 1) that
// every ParaPLL speedup in Tables 3–5 is measured against — plus the
// original unweighted pruned-BFS PLL of Akiba et al. for comparison.
//
// Indexing runs one Pruned Dijkstra per vertex in a chosen order. The
// search from root r is pruned at any vertex u whose distance is already
// covered by the 2-hop labels built so far (QUERY(r,u) ≤ D[u]); surviving
// vertices receive the label (r, D[u]). Complexity is
// O(wm·log²n + w²n·log²n) for tree-width w (paper §4.1).
package pll

import (
	"parapll/internal/graph"
	"parapll/internal/label"
	"parapll/internal/vheap"
)

// Trace records per-root instrumentation used by the paper's Figure 6
// (cumulative distribution of labels added by the x-th Pruned Dijkstra).
type Trace struct {
	// AddedPerRoot[k] is the number of labels created by the k-th Pruned
	// Dijkstra in the computing sequence.
	AddedPerRoot []int64
	// PrunedPerRoot[k] is the number of settled vertices the k-th search
	// pruned (dequeued but covered by existing labels).
	PrunedPerRoot []int64
	// WorkPerRoot[k] is a machine-independent work measure of the k-th
	// search (heap pops + edge relaxations + label entries scanned). The
	// harness uses it to compute projected speedups on machines with too
	// few cores to show wall-clock scaling.
	WorkPerRoot []int64
}

// alloc sizes the trace for n roots.
func (t *Trace) alloc(n int) {
	t.AddedPerRoot = make([]int64, n)
	t.PrunedPerRoot = make([]int64, n)
	t.WorkPerRoot = make([]int64, n)
}

// TotalWork sums WorkPerRoot.
func (t *Trace) TotalWork() int64 {
	var sum int64
	for _, w := range t.WorkPerRoot {
		sum += w
	}
	return sum
}

// Options configures a serial build.
type Options struct {
	// Order is the computing sequence; nil means degree descending (the
	// paper's policy). It must be a permutation of the vertices.
	Order []graph.Vertex
	// Trace, when non-nil, is filled with per-root instrumentation.
	Trace *Trace
	// LazyHeap switches the inner Dijkstra from the indexed 4-ary heap
	// with decrease-key to a lazy-deletion binary heap (ablation).
	LazyHeap bool
}

// Build indexes g serially and returns the finalized 2-hop index.
func Build(g *graph.Graph, opt Options) *label.Index {
	n := g.NumVertices()
	ord := opt.Order
	if ord == nil {
		ord = graph.DegreeOrder(g)
	} else if err := graph.CheckOrder(ord, n); err != nil {
		panic("pll: Order must be a permutation of the vertices: " + err.Error())
	}
	if opt.Trace != nil {
		opt.Trace.alloc(n)
	}

	labels := make([][]label.Entry, n)
	ps := NewSearcher(g, opt.LazyHeap)
	for k, r := range ord {
		added, pruned := ps.Run(r, func(u graph.Vertex) []label.Entry { return labels[u] },
			func(u graph.Vertex, e label.Entry) { labels[u] = append(labels[u], e) })
		if opt.Trace != nil {
			opt.Trace.AddedPerRoot[k] = added
			opt.Trace.PrunedPerRoot[k] = pruned
			opt.Trace.WorkPerRoot[k] = ps.LastWork()
		}
	}
	return label.NewIndexFromLists(labels)
}

// Searcher holds the reusable per-search scratch state for Pruned
// Dijkstra: a tentative-distance array with a touched list (reset in time
// proportional to the search, not n), the root's hub-distance scatter
// array for O(|L(u)|) prune queries, and the priority queue.
//
// A Searcher is not safe for concurrent use; parallel indexers (the
// ParaPLL core and cluster packages) give each worker its own Searcher
// over a shared label store.
type Searcher struct {
	g       *graph.Graph
	dist    []graph.Dist
	tmp     []graph.Dist // tmp[h] = dist from current root to hub h, via L(root)
	touched []graph.Vertex
	hubs    []graph.Vertex // hubs scattered into tmp, for reset
	heap    *vheap.Indexed
	lazy    *vheap.Lazy
	useLazy bool
	work    int64 // ops in the most recent Run: pops + relaxations + label scans
}

// LastWork returns the machine-independent work measure (heap pops, edge
// relaxations, label entries scanned in prune queries) of the most recent
// Run. Used for projected-speedup accounting.
func (ps *Searcher) LastWork() int64 { return ps.work }

func NewSearcher(g *graph.Graph, useLazy bool) *Searcher {
	n := g.NumVertices()
	ps := &Searcher{
		g:       g,
		dist:    make([]graph.Dist, n),
		tmp:     make([]graph.Dist, n),
		useLazy: useLazy,
	}
	for i := 0; i < n; i++ {
		ps.dist[i] = graph.Inf
		ps.tmp[i] = graph.Inf
	}
	if useLazy {
		ps.lazy = &vheap.Lazy{}
	} else {
		ps.heap = vheap.NewIndexed(n)
	}
	return ps
}

// Run executes one Pruned Dijkstra from root r. getLabel fetches the
// current label list of a vertex (a snapshot is fine: seeing fewer labels
// only weakens pruning, never correctness — Proposition 1); addLabel
// appends a new entry (r, d) to it. It returns how many labels were added
// and how many settled vertices were pruned.
func (ps *Searcher) Run(
	r graph.Vertex,
	getLabel func(graph.Vertex) []label.Entry,
	addLabel func(graph.Vertex, label.Entry),
) (added, pruned int64) {
	ps.work = 0
	// Scatter the root's current labels: tmp[h] = d(h, r). Every prune
	// query below is then one scan of L(u).
	rootLabels := getLabel(r)
	for _, e := range rootLabels {
		if e.D < ps.tmp[e.Hub] {
			ps.tmp[e.Hub] = e.D
		}
		ps.hubs = append(ps.hubs, e.Hub)
	}

	ps.dist[r] = 0
	ps.touched = append(ps.touched, r)
	if ps.useLazy {
		ps.lazy.Reset()
		ps.lazy.Push(r, 0)
	} else {
		ps.heap.Reset()
		ps.heap.Push(r, 0)
	}

	for {
		var u graph.Vertex
		var d graph.Dist
		if ps.useLazy {
			if ps.lazy.Len() == 0 {
				break
			}
			u, d = ps.lazy.Pop()
			if d > ps.dist[u] {
				continue // stale lazy entry
			}
		} else {
			if ps.heap.Len() == 0 {
				break
			}
			u, d = ps.heap.Pop()
		}

		ps.work++ // settled pop

		// Prune test: QUERY(r, u) over existing labels ≤ D[u]?
		lbl := getLabel(u)
		ps.work += int64(len(lbl))
		if CoveredBy(lbl, ps.tmp, d) {
			pruned++
			continue
		}
		addLabel(u, label.Entry{Hub: r, D: d})
		added++

		ns, ws := ps.g.Neighbors(u)
		ps.work += int64(len(ns))
		for i, v := range ns {
			nd := graph.AddDist(d, ws[i])
			if nd < ps.dist[v] {
				if ps.dist[v] == graph.Inf {
					ps.touched = append(ps.touched, v)
				}
				ps.dist[v] = nd
				if ps.useLazy {
					ps.lazy.Push(v, nd)
				} else {
					ps.heap.Push(v, nd)
				}
			}
		}
	}

	// Reset scratch state in O(search size).
	for _, v := range ps.touched {
		ps.dist[v] = graph.Inf
	}
	ps.touched = ps.touched[:0]
	for _, h := range ps.hubs {
		ps.tmp[h] = graph.Inf
	}
	ps.hubs = ps.hubs[:0]
	return added, pruned
}

// CoveredBy reports whether some hub h in labels has tmp[h] + d(h,u) ≤ d,
// i.e. the 2-hop cover already answers the pair at least as well. tmp is
// the querying root's hub-distance scatter array (tmp[h] = d(root, h),
// graph.Inf when h is not one of the root's hubs). This is the PLL prune
// test shared by the per-root searcher and core's batched engine.
func CoveredBy(labels []label.Entry, tmp []graph.Dist, d graph.Dist) bool {
	for _, e := range labels {
		if t := tmp[e.Hub]; t != graph.Inf {
			if graph.AddDist(t, e.D) <= d {
				return true
			}
		}
	}
	return false
}
