package compact

// Crash-recovery property tests: the pipeline's durability contract is
// that kill -9 at ANY byte boundary — mid-append, mid-checkpoint,
// mid-truncation — recovers to an index that answers every query
// exactly for the edge set whose records survived as the WAL's
// consistent prefix. These tests simulate the kill by snapshotting the
// directory's files at adversarial cut points and reopening from the
// copies, which is strictly harsher than a real SIGKILL (it also
// explores cuts inside a single write syscall).

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"parapll/internal/core"
	"parapll/internal/fileio"
	"parapll/internal/graph"
	"parapll/internal/label"
	"parapll/internal/sssp"
	"parapll/internal/wal"
)

// copyState clones selected files of a pipeline dir into a fresh dir,
// cutting wal.log to cutBytes (-1 keeps it whole).
func copyState(t *testing.T, src string, cutBytes int) string {
	t.Helper()
	dst := t.TempDir()
	for _, f := range []string{GraphFile, IndexFile, WALFile} {
		data, err := os.ReadFile(filepath.Join(src, f))
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if f == WALFile && cutBytes >= 0 && cutBytes < len(data) {
			data = data[:cutBytes]
		}
		if err := os.WriteFile(filepath.Join(dst, f), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestCrashReplayAtEveryBoundary applies a batch of updates, then for
// every possible crash point in the WAL file — every whole-record
// boundary AND every torn byte offset inside the final surviving
// record — reopens from that truncated image and checks each queried
// distance equals a from-scratch Dijkstra on base + surviving records.
func TestCrashReplayAtEveryBoundary(t *testing.T) {
	r := rand.New(rand.NewSource(91))
	const n = 20
	base := randomGraph(r, n, 25)
	dir := t.TempDir()
	p, err := Open(Options{Dir: dir, Graph: base})
	if err != nil {
		t.Fatal(err)
	}
	ups := randomInserts(r, n, 8)
	for _, up := range ups {
		if err := p.Update(up.U, up.V, up.W); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()

	whole, err := os.ReadFile(filepath.Join(dir, WALFile))
	if err != nil {
		t.Fatal(err)
	}
	if want := wal.HeaderSize + len(ups)*wal.RecordSize; len(whole) != want {
		t.Fatalf("WAL is %d bytes, want %d", len(whole), want)
	}
	for cut := wal.HeaderSize; cut <= len(whole); cut++ {
		crashDir := copyState(t, dir, cut)
		p2, err := Open(Options{Dir: crashDir, Graph: base})
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		survived := (cut - wal.HeaderSize) / wal.RecordSize
		cur := applied(base, ups[:survived])
		for s := graph.Vertex(0); int(s) < n; s++ {
			want := sssp.Dijkstra(cur, s)
			for u := graph.Vertex(0); int(u) < n; u++ {
				if got := p2.Query(s, u); got != want[u] {
					t.Fatalf("cut %d (%d records): query(%d,%d) = %d, want %d",
						cut, survived, s, u, got, want[u])
				}
			}
		}
		p2.Close()
	}
}

// TestCrashBetweenCheckpointSaves reconstructs the nastiest compaction
// crash window by hand: graph.bin already holds the folded graph but
// index.midx is still the index of the PREVIOUS checkpoint, and the WAL
// was never truncated. The stale index only overestimates, and the full
// replay must repair every shortened pair back to exact.
func TestCrashBetweenCheckpointSaves(t *testing.T) {
	r := rand.New(rand.NewSource(92))
	const n = 20
	base := randomGraph(r, n, 25)
	ups := randomInserts(r, n, 12)
	folded := applied(base, ups)

	dir := t.TempDir()
	// The crash left: new graph, old index, full WAL.
	if err := fileio.SaveGraph(filepath.Join(dir, GraphFile), folded); err != nil {
		t.Fatal(err)
	}
	oldIdx := core.Build(base, core.Options{Threads: 1})
	if err := fileio.SaveIndexAs(filepath.Join(dir, IndexFile), oldIdx, label.FormatMmap); err != nil {
		t.Fatal(err)
	}
	l, _, err := wal.Open(filepath.Join(dir, WALFile))
	if err != nil {
		t.Fatal(err)
	}
	for _, up := range ups {
		if err := l.Append(up.U, up.V, up.W); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	p, err := Open(Options{Dir: dir, Graph: base})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer p.Close()
	checkAllPairs(t, folded, p)
	// And the next compaction rolls it into a clean matched pair.
	if _, err := p.Compact(); err != nil {
		t.Fatal(err)
	}
	checkAllPairs(t, folded, p)
}

// TestCrashAfterCompactionBoundaries compacts mid-stream and then
// explores crash cuts in the post-compaction WAL: recovery must replay
// the surviving suffix on top of the checkpoint pair.
func TestCrashAfterCompactionBoundaries(t *testing.T) {
	r := rand.New(rand.NewSource(93))
	const n = 18
	base := randomGraph(r, n, 20)
	dir := t.TempDir()
	p, err := Open(Options{Dir: dir, Graph: base})
	if err != nil {
		t.Fatal(err)
	}
	first := randomInserts(r, n, 6)
	for _, up := range first {
		if err := p.Update(up.U, up.V, up.W); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.Compact(); err != nil {
		t.Fatal(err)
	}
	second := randomInserts(r, n, 5)
	for _, up := range second {
		if err := p.Update(up.U, up.V, up.W); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()

	whole, err := os.ReadFile(filepath.Join(dir, WALFile))
	if err != nil {
		t.Fatal(err)
	}
	for cut := wal.HeaderSize; cut <= len(whole); cut += 7 { // stride keeps it quick; still hits torn offsets
		crashDir := copyState(t, dir, cut)
		p2, err := Open(Options{Dir: crashDir, Graph: base})
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		survived := (cut - wal.HeaderSize) / wal.RecordSize
		cur := applied(base, append(append([]wal.Update{}, first...), second[:survived]...))
		for s := graph.Vertex(0); int(s) < n; s++ {
			want := sssp.Dijkstra(cur, s)
			for u := graph.Vertex(0); int(u) < n; u++ {
				if got := p2.Query(s, u); got != want[u] {
					t.Fatalf("cut %d: query(%d,%d) = %d, want %d", cut, s, u, got, want[u])
				}
			}
		}
		p2.Close()
	}
}

// TestHammerCompactionUnderQueries runs concurrent readers against a
// pipeline absorbing inserts and background compactions. Because edge
// inserts only shorten distances and every write-locked transition
// leaves the index exact, each reader must observe, per pair, a
// monotone non-increasing distance sequence sandwiched between the
// final and initial true distances — never a stale regression and
// never an underestimate. Run under -race this also proves the
// RWMutex discipline sound.
func TestHammerCompactionUnderQueries(t *testing.T) {
	r := rand.New(rand.NewSource(94))
	const n = 60
	base := randomGraph(r, n, 80)
	ups := randomInserts(r, n, 40)
	final := applied(base, ups)

	type pair struct{ s, t graph.Vertex }
	pairs := make([]pair, 30)
	initD := make([]graph.Dist, len(pairs))
	finalD := make([]graph.Dist, len(pairs))
	for i := range pairs {
		pairs[i] = pair{graph.Vertex(r.Intn(n)), graph.Vertex(r.Intn(n))}
		initD[i] = sssp.Dijkstra(base, pairs[i].s)[pairs[i].t]
		finalD[i] = sssp.Dijkstra(final, pairs[i].s)[pairs[i].t]
	}

	p, err := Open(Options{Dir: t.TempDir(), Graph: base, CompactEvery: 8, FoldLimit: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	done := make(chan struct{})
	var wg sync.WaitGroup
	errc := make(chan error, 4)
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := append([]graph.Dist(nil), initD...)
			for {
				select {
				case <-done:
					return
				default:
				}
				for i, pr := range pairs {
					got := p.Query(pr.s, pr.t)
					if got > last[i] {
						errc <- fmt.Errorf("pair (%d,%d) regressed %d -> %d", pr.s, pr.t, last[i], got)
						return
					}
					if got < finalD[i] {
						errc <- fmt.Errorf("pair (%d,%d) underestimated: %d < final %d", pr.s, pr.t, got, finalD[i])
						return
					}
					last[i] = got
				}
			}
		}()
	}
	for _, up := range ups {
		if err := p.Update(up.U, up.V, up.W); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	// Quiesce: a final explicit compaction, then exactness end to end.
	if _, err := p.Compact(); err != nil {
		t.Fatal(err)
	}
	if p.Stats().WALRecords != 0 {
		t.Fatalf("WAL not drained after final compaction: %+v", p.Stats())
	}
	checkAllPairs(t, final, p)
}
