// Package compact is the living-graph pipeline: a serving-side wrapper
// that keeps a dynamic PLL index exact under a stream of edge inserts
// while a background compactor periodically folds the accumulated
// updates into a fresh checkpoint artifact and rolls the serving index
// onto it — LSM discipline applied to distance labeling.
//
// # State machine
//
// A Pipeline owns three durable files in one directory:
//
//	wal.log    the fsynced edge-update log (internal/wal)
//	graph.bin  the last compacted graph (checkpoint base)
//	index.midx the last compacted index, exact for graph.bin
//
// and two in-memory pieces: the checkpoint graph and a dynamic.Index
// that is the checkpoint index repaired by every WAL record (the live
// overlay). The invariant, held at every instant including across kill
// -9: checkpoint index + full WAL replay = exact index for checkpoint
// graph + WAL edges. Open reconstructs exactly that, so an
// acknowledged update is never lost and a queried distance is never
// wrong after recovery.
//
// # Update path
//
// Update is log-before-apply: validate (CheckInsert), append + fsync to
// the WAL, then repair the live index — so any record that reaches the
// log is one the index accepts on apply and on crash replay, and any
// crash between the two is healed by replay idempotence (re-inserting
// an edge the index already has never changes a distance).
//
// # Compaction
//
// When the WAL holds n records, Compact folds them into the graph and
// produces a fresh exact index two ways: for small n (<= FoldLimit) it
// snapshots the live repaired lists (dynamic.ToIndex) under the write
// lock — O(index) with zero search work; for large n it rebuilds from
// scratch with the pluggable build engine off the serving path. Either
// way the new artifact pair is saved (graph.bin first, then
// index.midx, both through the atomic temp+fsync+rename discipline),
// a fresh dynamic index is warmed off-lock, and a short write-locked
// swap replays the records that arrived mid-compaction, publishes the
// new index, and truncates the folded prefix off the WAL. Every crash
// window in that sequence leaves a (checkpoint, WAL) pair whose replay
// is exact — a stale index beside a newer graph only overestimates,
// and the untruncated WAL replay repairs precisely those pairs.
//
// # Concurrency
//
// dynamic.Index is single-writer; the Pipeline turns it into a safe
// concurrent surface with one RWMutex: queries take the read lock,
// Update and the compaction swap take the write lock. QueryBatch under
// the read lock means dynamic's batch tripwire can never fire through
// this wrapper. Compactions themselves are serialized by a separate
// mutex and do all expensive work (fold, rebuild, artifact writes)
// outside both.
package compact

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"parapll/internal/core"
	"parapll/internal/dynamic"
	"parapll/internal/fileio"
	"parapll/internal/graph"
	"parapll/internal/label"
	"parapll/internal/oracle"
	"parapll/internal/trace"
	"parapll/internal/wal"
)

// File names inside the pipeline directory.
const (
	WALFile   = "wal.log"
	GraphFile = "graph.bin"
	IndexFile = "index.midx"
)

// DefaultFoldLimit is the update count up to which compaction snapshots
// the live repaired lists instead of rebuilding. Folding is O(index
// size) and holds the write lock for the copy, so it must stay small;
// past it a from-scratch engine build off the serving path wins.
const DefaultFoldLimit = 64

// Options configures a Pipeline.
type Options struct {
	// Dir is the pipeline directory holding wal.log and the checkpoint
	// artifacts. Required; created if missing.
	Dir string
	// Graph is the base graph used when no graph.bin checkpoint exists
	// yet (first boot). Required.
	Graph *graph.Graph
	// Index, when non-nil, seeds the first boot (no checkpoint on disk)
	// with an already-built index for Graph instead of paying a build in
	// Open. Ignored once a checkpoint exists — the checkpoint pair is
	// newer by construction.
	Index *label.Index
	// CompactEvery triggers a background compaction whenever the WAL
	// reaches this many records; <= 0 means compaction runs only when
	// Compact is called explicitly.
	CompactEvery int
	// FoldLimit is the incremental-fold cutoff (0 means
	// DefaultFoldLimit; negative disables folding entirely).
	FoldLimit int
	// Threads is the rebuild parallelism (as core.Options.Threads;
	// <= 0 means GOMAXPROCS).
	Threads int
	// Engine selects the rebuild algorithm; nil means core.PerRoot.
	Engine core.Engine
	// Tracer, when non-nil, is consulted per operation; sampled updates
	// emit wal.append spans on trace.TIDWAL and every compaction emits
	// a compact.run span on trace.TIDCompact. Returning nil means
	// tracing is off for that operation.
	Tracer func() *trace.Tracer
	// OnPublish, when non-nil, is called after every completed
	// compaction, outside all pipeline locks — the server uses it to
	// bump its snapshot generation and metrics.
	OnPublish func(Report)
	// OnFsync, when non-nil, receives the duration of every WAL append
	// fsync (wired to wal.Log.SetSyncObserver). It runs inside the WAL's
	// critical section and must be cheap — the anomaly watchdog feeds it
	// into a windowed latency histogram.
	OnFsync func(elapsed time.Duration)
	// Logf, when non-nil, receives progress lines (compaction start,
	// mode, timings, failures).
	Logf func(format string, args ...any)
}

func (o *Options) foldLimit() int {
	if o.FoldLimit == 0 {
		return DefaultFoldLimit
	}
	if o.FoldLimit < 0 {
		return 0
	}
	return o.FoldLimit
}

// Report describes one completed compaction.
type Report struct {
	// Mode is "fold" (live-list snapshot) or "rebuild" (engine build).
	Mode string
	// Folded is how many WAL records the checkpoint absorbed.
	Folded int
	// Tail is how many records arrived mid-compaction and were replayed
	// during the swap.
	Tail int
	// BuildTime covers producing the new exact index (snapshot or
	// engine build, including the graph fold).
	BuildTime time.Duration
	// SaveTime covers writing graph.bin and index.midx.
	SaveTime time.Duration
	// SwapTime is the write-locked publish window — tail replay, index
	// swap and WAL truncation; the pipeline's publish-to-visible
	// latency.
	SwapTime time.Duration
	// Generation is the pipeline's compaction count after this run.
	Generation uint64
}

// Stats is a point-in-time snapshot of the pipeline's observable state,
// shaped for the server's /stats and /metrics endpoints.
type Stats struct {
	WALRecords   int    `json:"wal_records"`
	WALBytes     int64  `json:"wal_bytes"`
	Updates      uint64 `json:"updates_total"`
	Compactions  uint64 `json:"compactions_total"`
	Compacting   bool   `json:"compacting"`
	CompactEvery int    `json:"compact_every"`
	// CompactingSinceUnixNano is the start time of the compaction in
	// flight, 0 when none is running — the watchdog's stalled-compaction
	// signal.
	CompactingSinceUnixNano int64 `json:"compacting_since_unix_nano,omitempty"`
	// LastCompactUnixNano is 0 until the first compaction completes.
	LastCompactUnixNano int64  `json:"last_compaction_unix_nano"`
	LastCompactMode     string `json:"last_compaction_mode,omitempty"`
	LastSwapNanos       int64  `json:"last_swap_nanos,omitempty"`
}

// Pipeline is the living-graph serving surface. It implements
// oracle.Oracle (queries under a read lock) plus Update (durable edge
// insert) and Compact (checkpoint roll). Create with Open, release
// with Close.
type Pipeline struct {
	opt    Options
	dir    string
	log    *wal.Log
	engine core.Engine

	mu       sync.RWMutex // queries RLock; Update and the swap Lock
	live     *dynamic.Index
	curGraph *graph.Graph

	compactMu    sync.Mutex // serializes whole compactions
	compacting   atomic.Bool
	compactSince atomic.Int64 // start of the in-flight compaction; 0 when idle
	updates      atomic.Uint64
	compactions  atomic.Uint64
	lastCompact  atomic.Int64
	lastSwap     atomic.Int64
	lastMode     atomic.Pointer[string]

	kickC chan struct{}
	stopC chan struct{}
	doneC chan struct{}
}

// Open builds a Pipeline from the directory's durable state: load the
// checkpoint pair if present (falling back to opt.Graph / opt.Index /
// an engine build on first boot), then replay the WAL on top so the
// live index is exact for the full pre-crash edge set. The WAL's own
// Open truncates any torn tail first.
func Open(opt Options) (*Pipeline, error) {
	if opt.Dir == "" {
		return nil, fmt.Errorf("compact: Options.Dir is required")
	}
	if opt.Graph == nil {
		return nil, fmt.Errorf("compact: Options.Graph is required")
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("compact: creating %s: %w", opt.Dir, err)
	}
	engine := opt.Engine
	if engine == nil {
		engine = core.PerRoot{}
	}
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	// Checkpoint graph: the folded one on disk supersedes the boot graph
	// (it is the boot graph plus every previously compacted insert).
	g := opt.Graph
	gpath := filepath.Join(opt.Dir, GraphFile)
	if _, err := os.Stat(gpath); err == nil {
		cg, err := fileio.LoadGraph(gpath)
		if err != nil {
			return nil, fmt.Errorf("compact: loading checkpoint graph: %w", err)
		}
		if cg.NumVertices() != g.NumVertices() {
			return nil, fmt.Errorf("compact: checkpoint graph has %d vertices, boot graph %d — wrong -wal directory for this graph",
				cg.NumVertices(), g.NumVertices())
		}
		g = cg
	}

	// Checkpoint index. A stale index beside a newer graph.bin (crash
	// between the two saves) only overestimates, and the still-full WAL
	// replay below repairs exactly those pairs — so any surviving pair
	// of files is safe to resume from.
	var idx *label.Index
	ipath := filepath.Join(opt.Dir, IndexFile)
	switch _, err := os.Stat(ipath); {
	case err == nil:
		if idx, err = fileio.LoadIndex(ipath); err != nil {
			return nil, fmt.Errorf("compact: loading checkpoint index: %w", err)
		}
	case opt.Index != nil && g == opt.Graph:
		idx = opt.Index
	default:
		logf("compact: no checkpoint index, building from %d vertices / %d edges", g.NumVertices(), g.NumEdges())
		idx = core.Build(g, core.Options{Threads: opt.Threads, Engine: engine})
	}
	if idx.NumVertices() != g.NumVertices() {
		return nil, fmt.Errorf("compact: checkpoint index covers %d vertices, graph has %d", idx.NumVertices(), g.NumVertices())
	}
	// First boot: persist whatever checkpoint piece is missing, so the
	// next restart resumes in O(artifact) instead of rebuilding, and the
	// serving layer can always publish Dir/index.midx as its snapshot
	// source. Graph first — see the crash-window analysis above.
	if _, err := os.Stat(gpath); err != nil {
		if err := fileio.SaveGraph(gpath, g); err != nil {
			return nil, fmt.Errorf("compact: saving initial checkpoint graph: %w", err)
		}
	}
	if _, err := os.Stat(ipath); err != nil {
		if err := fileio.SaveIndexAs(ipath, idx, label.FormatMmap); err != nil {
			return nil, fmt.Errorf("compact: saving initial checkpoint index: %w", err)
		}
	}

	log, ups, err := wal.Open(filepath.Join(opt.Dir, WALFile))
	if err != nil {
		return nil, err
	}
	if opt.OnFsync != nil {
		log.SetSyncObserver(opt.OnFsync)
	}
	live := dynamic.FromIndex(g, idx)
	for i, up := range ups {
		if err := live.InsertEdge(up.U, up.V, up.W); err != nil {
			log.Close()
			return nil, fmt.Errorf("compact: WAL record %d (%d,%d,%d) does not apply to this graph: %w", i, up.U, up.V, up.W, err)
		}
	}
	if len(ups) > 0 {
		logf("compact: replayed %d WAL records", len(ups))
	}

	p := &Pipeline{
		opt:      opt,
		dir:      opt.Dir,
		log:      log,
		engine:   engine,
		live:     live,
		curGraph: g,
		kickC:    make(chan struct{}, 1),
		stopC:    make(chan struct{}),
		doneC:    make(chan struct{}),
	}
	p.opt.Logf = logf
	go p.loop()
	return p, nil
}

// loop is the background compactor: it waits for threshold kicks and
// runs one compaction per kick. Errors are logged, not fatal — the WAL
// keeps absorbing updates and the next kick retries.
func (p *Pipeline) loop() {
	defer close(p.doneC)
	for {
		select {
		case <-p.stopC:
			return
		case <-p.kickC:
			if _, err := p.Compact(); err != nil {
				p.opt.Logf("compact: background compaction failed: %v", err)
			}
		}
	}
}

// kick requests a background compaction without blocking.
func (p *Pipeline) kick() {
	select {
	case p.kickC <- struct{}{}:
	default:
	}
}

// NumVertices implements oracle.Oracle.
func (p *Pipeline) NumVertices() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.live.NumVertices()
}

// Query implements oracle.Oracle.
func (p *Pipeline) Query(s, t graph.Vertex) graph.Dist {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.live.Query(s, t)
}

// QueryWithHub implements oracle.Oracle.
func (p *Pipeline) QueryWithHub(s, t graph.Vertex) (graph.Dist, graph.Vertex) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.live.QueryWithHub(s, t)
}

// QueryBatch implements oracle.Oracle. The whole batch runs under the
// read lock, so it can never interleave with an insert — dynamic's
// batch tripwire is structurally unreachable through the Pipeline.
func (p *Pipeline) QueryBatch(pairs [][2]graph.Vertex, threads int) []graph.Dist {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.live.QueryBatch(pairs, threads)
}

// Update durably inserts the undirected edge {u,v,w}: validate, append
// + fsync to the WAL, repair the live index — in that order, so every
// acknowledged insert survives kill -9 and every logged record is
// applicable on replay. Validation failures wrap dynamic.ErrInvalid.
func (p *Pipeline) Update(u, v graph.Vertex, w graph.Dist) error {
	var tr *trace.Tracer
	var t0 int64
	if p.opt.Tracer != nil {
		if tr = p.opt.Tracer(); tr.Sample() {
			t0 = tr.Now()
		} else {
			tr = nil
		}
	}
	p.mu.Lock()
	err := p.insertLocked(u, v, w)
	pending := p.log.Len()
	p.mu.Unlock()
	if err != nil {
		return err
	}
	if tr != nil {
		tr.Buf(trace.TIDWAL).Span(tr.Intern("wal.append", "u", "v", "w"), t0, tr.Now(),
			uint64(uint32(u)), uint64(uint32(v)), uint64(w))
	}
	p.updates.Add(1)
	if p.opt.CompactEvery > 0 && pending >= p.opt.CompactEvery {
		p.kick()
	}
	return nil
}

func (p *Pipeline) insertLocked(u, v graph.Vertex, w graph.Dist) error {
	if err := p.live.CheckInsert(u, v, w); err != nil {
		return err
	}
	if err := p.log.Append(u, v, w); err != nil {
		return fmt.Errorf("compact: durable append failed, insert not applied: %w", err)
	}
	if err := p.live.InsertEdge(u, v, w); err != nil {
		// CheckInsert passed and the write lock excludes batches, so
		// this is unreachable; the logged record replays harmlessly.
		return fmt.Errorf("compact: logged but failed to apply: %w", err)
	}
	return nil
}

// Compact folds the WAL into a fresh checkpoint and rolls the serving
// index onto it. Small backlogs (<= FoldLimit) snapshot the live
// repaired lists; larger ones rebuild from scratch with the build
// engine, off the serving path. Returns a zero-Mode Report when the
// WAL is empty. Safe to call concurrently; compactions serialize.
func (p *Pipeline) Compact() (Report, error) {
	p.compactMu.Lock()
	defer p.compactMu.Unlock()
	p.compacting.Store(true)
	p.compactSince.Store(time.Now().UnixNano())
	defer func() {
		p.compactSince.Store(0)
		p.compacting.Store(false)
	}()

	var tr *trace.Tracer
	var tr0 int64
	if p.opt.Tracer != nil {
		if tr = p.opt.Tracer(); tr.Enabled() {
			tr0 = tr.Now()
		} else {
			tr = nil
		}
	}

	// Phase 1 (write-locked): fix the fold point n; in fold mode also
	// snapshot the live lists, which are exact for checkpoint+ups[:n]
	// because appends only happen under the same lock.
	tBuild := time.Now()
	p.mu.Lock()
	n := p.log.Len()
	if n == 0 {
		p.mu.Unlock()
		return Report{}, nil
	}
	ups := p.log.Updates()[:n]
	fold := n <= p.opt.foldLimit()
	var idx *label.Index
	if fold {
		idx = p.live.ToIndex()
	}
	p.mu.Unlock()

	// Phase 2 (unlocked): fold the graph; rebuild if the backlog was
	// too large to snapshot. curGraph is only written under compactMu,
	// which we hold.
	edges := p.curGraph.Edges()
	for _, up := range ups {
		edges = append(edges, graph.Edge{U: up.U, V: up.V, W: up.W})
	}
	g2 := graph.FromEdges(p.curGraph.NumVertices(), edges)
	mode := "fold"
	if !fold {
		mode = "rebuild"
		idx = core.Build(g2, core.Options{Threads: p.opt.Threads, Engine: p.engine})
	}
	buildTime := time.Since(tBuild)

	// Phase 3 (unlocked): persist the pair, graph first. Each write is
	// atomic; see Open for why every crash interleaving stays safe.
	tSave := time.Now()
	if err := fileio.SaveGraph(filepath.Join(p.dir, GraphFile), g2); err != nil {
		return Report{}, fmt.Errorf("compact: saving checkpoint graph: %w", err)
	}
	if err := fileio.SaveIndexAs(filepath.Join(p.dir, IndexFile), idx, label.FormatMmap); err != nil {
		return Report{}, fmt.Errorf("compact: saving checkpoint index: %w", err)
	}
	saveTime := time.Since(tSave)

	// Phase 4 (unlocked): warm the replacement dynamic index.
	next := dynamic.FromIndex(g2, idx)

	// Phase 5 (write-locked): replay what arrived mid-compaction, swap,
	// drop the folded prefix. If truncation fails the swap stands — the
	// over-long WAL replays idempotently on the new checkpoint.
	tSwap := time.Now()
	p.mu.Lock()
	tail := p.log.Updates()[n:]
	for _, up := range tail {
		if err := next.InsertEdge(up.U, up.V, up.W); err != nil {
			p.mu.Unlock()
			return Report{}, fmt.Errorf("compact: replaying mid-compaction record (%d,%d,%d): %w", up.U, up.V, up.W, err)
		}
	}
	p.live = next
	p.curGraph = g2
	truncErr := p.log.TruncateFront(n)
	p.mu.Unlock()
	swapTime := time.Since(tSwap)
	if truncErr != nil {
		p.opt.Logf("compact: WAL truncation failed (harmless, replay is idempotent): %v", truncErr)
	}

	gen := p.compactions.Add(1)
	p.lastCompact.Store(time.Now().UnixNano())
	p.lastSwap.Store(int64(swapTime))
	p.lastMode.Store(&mode)
	rep := Report{
		Mode: mode, Folded: n, Tail: len(tail),
		BuildTime: buildTime, SaveTime: saveTime, SwapTime: swapTime,
		Generation: gen,
	}
	if tr != nil {
		var m uint64
		if mode == "rebuild" {
			m = 1
		}
		tr.Buf(trace.TIDCompact).Span(tr.Intern("compact.run", "folded", "tail", "rebuild"),
			tr0, tr.Now(), uint64(n), uint64(len(tail)), m)
	}
	p.opt.Logf("compact: generation %d: %s of %d records (+%d tail) build=%s save=%s swap=%s",
		gen, mode, n, len(tail), buildTime.Round(time.Microsecond), saveTime.Round(time.Microsecond), swapTime.Round(time.Microsecond))
	if p.opt.OnPublish != nil {
		p.opt.OnPublish(rep)
	}
	return rep, nil
}

// Stats snapshots the pipeline's observable state.
func (p *Pipeline) Stats() Stats {
	s := Stats{
		WALRecords:              p.log.Len(),
		WALBytes:                p.log.Bytes(),
		Updates:                 p.updates.Load(),
		Compactions:             p.compactions.Load(),
		Compacting:              p.compacting.Load(),
		CompactEvery:            p.opt.CompactEvery,
		CompactingSinceUnixNano: p.compactSince.Load(),
		LastCompactUnixNano:     p.lastCompact.Load(),
		LastSwapNanos:           p.lastSwap.Load(),
	}
	if m := p.lastMode.Load(); m != nil {
		s.LastCompactMode = *m
	}
	return s
}

// Generation returns the number of completed compactions.
func (p *Pipeline) Generation() uint64 { return p.compactions.Load() }

// IndexPath returns the checkpoint index artifact's path. The file
// exists from Open onward and is atomically replaced by compactions —
// the path a serving layer hands to its /reload machinery.
func (p *Pipeline) IndexPath() string { return filepath.Join(p.dir, IndexFile) }

// GraphPath returns the checkpoint graph artifact's path.
func (p *Pipeline) GraphPath() string { return filepath.Join(p.dir, GraphFile) }

// Close stops the background compactor and releases the WAL. It does
// not run a final compaction — the WAL is the durable state.
func (p *Pipeline) Close() error {
	select {
	case <-p.stopC:
	default:
		close(p.stopC)
	}
	<-p.doneC
	// A compaction in flight when stop fired still holds compactMu;
	// wait for it so the WAL handle is not yanked mid-truncation.
	p.compactMu.Lock()
	defer p.compactMu.Unlock()
	return p.log.Close()
}

// InsertEdge implements oracle.Updatable as an alias for Update, so
// the Pipeline drops into any seam that accepts a dynamic.Index.
func (p *Pipeline) InsertEdge(u, v graph.Vertex, w graph.Dist) error {
	return p.Update(u, v, w)
}

// The Pipeline is itself an updatable oracle.
var _ oracle.Updatable = (*Pipeline)(nil)
