package compact

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

// TestFsyncObserverAndCompactingSince: OnFsync is wired through to the
// WAL (one callback per durable Update), and Stats exposes the
// in-flight compaction start time — 0 when idle, the wall-clock start
// while a compaction runs.
func TestFsyncObserverAndCompactingSince(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	base := randomGraph(r, 12, 6)
	var fsyncs atomic.Int64
	var sinceDuringCompact atomic.Int64
	var p *Pipeline
	p, err := Open(Options{
		Dir:   t.TempDir(),
		Graph: base,
		OnFsync: func(d time.Duration) {
			if d < 0 {
				t.Errorf("negative fsync duration %v", d)
			}
			fsyncs.Add(1)
		},
		// OnPublish runs inside Compact before the in-flight marker
		// clears, so it can witness the mid-compaction Stats view.
		OnPublish: func(Report) {
			sinceDuringCompact.Store(p.Stats().CompactingSinceUnixNano)
		},
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer p.Close()

	if since := p.Stats().CompactingSinceUnixNano; since != 0 {
		t.Fatalf("idle pipeline reports compacting_since %d", since)
	}

	ups := randomInserts(r, 12, 5)
	for _, up := range ups {
		if err := p.Update(up.U, up.V, up.W); err != nil {
			t.Fatalf("Update: %v", err)
		}
	}
	if got := fsyncs.Load(); got != int64(len(ups)) {
		t.Fatalf("OnFsync fired %d times for %d updates", got, len(ups))
	}

	before := time.Now().UnixNano()
	if _, err := p.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if got := sinceDuringCompact.Load(); got < before {
		t.Fatalf("mid-compaction compacting_since = %d, want >= %d", got, before)
	}
	st := p.Stats()
	if st.CompactingSinceUnixNano != 0 {
		t.Fatalf("completed compaction left compacting_since %d", st.CompactingSinceUnixNano)
	}
	if st.LastCompactUnixNano < before {
		t.Fatalf("last compaction stamp %d predates the run (%d)", st.LastCompactUnixNano, before)
	}
}
