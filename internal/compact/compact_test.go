package compact

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"parapll/internal/dynamic"
	"parapll/internal/graph"
	"parapll/internal/sssp"
	"parapll/internal/wal"
)

func randomGraph(r *rand.Rand, n, extra int) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1+extra)
	for v := 1; v < n; v++ {
		edges = append(edges, graph.Edge{
			U: graph.Vertex(r.Intn(v)), V: graph.Vertex(v), W: graph.Dist(1 + r.Intn(20)),
		})
	}
	for i := 0; i < extra; i++ {
		edges = append(edges, graph.Edge{
			U: graph.Vertex(r.Intn(n)), V: graph.Vertex(r.Intn(n)), W: graph.Dist(1 + r.Intn(20)),
		})
	}
	return graph.FromEdges(n, edges)
}

// randomInserts draws valid distinct-endpoint inserts.
func randomInserts(r *rand.Rand, n, count int) []wal.Update {
	ups := make([]wal.Update, 0, count)
	for len(ups) < count {
		u, v := graph.Vertex(r.Intn(n)), graph.Vertex(r.Intn(n))
		if u == v {
			continue
		}
		ups = append(ups, wal.Update{U: u, V: v, W: graph.Dist(1 + r.Intn(15))})
	}
	return ups
}

// applied folds base plus the given updates into a plain graph — the
// ground truth the pipeline must match.
func applied(base *graph.Graph, ups []wal.Update) *graph.Graph {
	edges := base.Edges()
	for _, up := range ups {
		edges = append(edges, graph.Edge{U: up.U, V: up.V, W: up.W})
	}
	return graph.FromEdges(base.NumVertices(), edges)
}

// checkAllPairs verifies the pipeline against Dijkstra on cur.
func checkAllPairs(t *testing.T, cur *graph.Graph, p *Pipeline) {
	t.Helper()
	n := cur.NumVertices()
	for s := graph.Vertex(0); int(s) < n; s++ {
		want := sssp.Dijkstra(cur, s)
		for u := graph.Vertex(0); int(u) < n; u++ {
			if got := p.Query(s, u); got != want[u] {
				t.Fatalf("query(%d,%d) = %d, want %d", s, u, got, want[u])
			}
		}
	}
}

func TestPipelineExactUnderUpdates(t *testing.T) {
	r := rand.New(rand.NewSource(81))
	base := randomGraph(r, 30, 40)
	dir := t.TempDir()
	p, err := Open(Options{Dir: dir, Graph: base})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer p.Close()
	checkAllPairs(t, base, p)
	ups := randomInserts(r, 30, 20)
	for _, up := range ups {
		if err := p.Update(up.U, up.V, up.W); err != nil {
			t.Fatalf("Update(%v): %v", up, err)
		}
	}
	checkAllPairs(t, applied(base, ups), p)
	if st := p.Stats(); st.WALRecords != len(ups) || st.Updates != uint64(len(ups)) {
		t.Fatalf("stats = %+v, want %d records", st, len(ups))
	}
}

func TestReopenReplaysWAL(t *testing.T) {
	r := rand.New(rand.NewSource(82))
	base := randomGraph(r, 25, 30)
	dir := t.TempDir()
	p, err := Open(Options{Dir: dir, Graph: base})
	if err != nil {
		t.Fatal(err)
	}
	ups := randomInserts(r, 25, 15)
	for _, up := range ups {
		if err := p.Update(up.U, up.V, up.W); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	// A fresh process: same dir, same boot graph, no compaction ever ran
	// — the WAL alone must reconstruct the exact pre-close state.
	p2, err := Open(Options{Dir: dir, Graph: base})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer p2.Close()
	if got := p2.Stats().WALRecords; got != len(ups) {
		t.Fatalf("reopened with %d WAL records, want %d", got, len(ups))
	}
	checkAllPairs(t, applied(base, ups), p2)
}

func TestCompactFoldMode(t *testing.T) {
	r := rand.New(rand.NewSource(83))
	base := randomGraph(r, 25, 30)
	dir := t.TempDir()
	p, err := Open(Options{Dir: dir, Graph: base})
	if err != nil {
		t.Fatal(err)
	}
	ups := randomInserts(r, 25, 10) // 10 <= DefaultFoldLimit
	for _, up := range ups {
		if err := p.Update(up.U, up.V, up.W); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := p.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if rep.Mode != "fold" || rep.Folded != len(ups) {
		t.Fatalf("report = %+v, want fold of %d", rep, len(ups))
	}
	if got := p.Stats().WALRecords; got != 0 {
		t.Fatalf("WAL holds %d records after compaction", got)
	}
	cur := applied(base, ups)
	checkAllPairs(t, cur, p)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	// Restart resumes from the checkpoint pair with an empty WAL.
	p2, err := Open(Options{Dir: dir, Graph: base})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	checkAllPairs(t, cur, p2)
	for _, f := range []string{GraphFile, IndexFile} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("checkpoint file %s: %v", f, err)
		}
	}
}

func TestCompactRebuildMode(t *testing.T) {
	r := rand.New(rand.NewSource(84))
	base := randomGraph(r, 25, 30)
	dir := t.TempDir()
	p, err := Open(Options{Dir: dir, Graph: base, FoldLimit: -1}) // force rebuild
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ups := randomInserts(r, 25, 8)
	for _, up := range ups {
		if err := p.Update(up.U, up.V, up.W); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := p.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if rep.Mode != "rebuild" || rep.Folded != len(ups) {
		t.Fatalf("report = %+v, want rebuild of %d", rep, len(ups))
	}
	checkAllPairs(t, applied(base, ups), p)
	// Updates keep landing on the rolled index.
	more := randomInserts(r, 25, 5)
	for _, up := range more {
		if err := p.Update(up.U, up.V, up.W); err != nil {
			t.Fatal(err)
		}
	}
	checkAllPairs(t, applied(base, append(append([]wal.Update{}, ups...), more...)), p)
}

func TestCompactEmptyWALIsNoop(t *testing.T) {
	r := rand.New(rand.NewSource(85))
	base := randomGraph(r, 10, 5)
	p, err := Open(Options{Dir: t.TempDir(), Graph: base})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	rep, err := p.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "" || rep.Folded != 0 {
		t.Fatalf("empty-WAL compaction produced %+v", rep)
	}
	if p.Generation() != 0 {
		t.Fatalf("generation bumped to %d by a no-op", p.Generation())
	}
}

func TestUpdateRejectsInvalid(t *testing.T) {
	r := rand.New(rand.NewSource(86))
	base := randomGraph(r, 10, 5)
	p, err := Open(Options{Dir: t.TempDir(), Graph: base})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	cases := []wal.Update{
		{U: 3, V: 3, W: 1},         // self loop
		{U: 0, V: 99, W: 1},        // out of range
		{U: -2, V: 1, W: 1},        // negative id
		{U: 0, V: 1, W: 0},         // zero weight
		{U: 0, V: 1, W: graph.Inf}, // Inf sentinel
	}
	for _, up := range cases {
		err := p.Update(up.U, up.V, up.W)
		if !errors.Is(err, dynamic.ErrInvalid) {
			t.Errorf("Update(%v) = %v, want ErrInvalid", up, err)
		}
	}
	if got := p.Stats().WALRecords; got != 0 {
		t.Fatalf("invalid updates reached the WAL: %d records", got)
	}
}

func TestAutoCompactionTriggers(t *testing.T) {
	r := rand.New(rand.NewSource(87))
	base := randomGraph(r, 20, 20)
	var published atomic.Bool
	p, err := Open(Options{
		Dir: t.TempDir(), Graph: base, CompactEvery: 4,
		OnPublish: func(Report) { published.Store(true) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ups := randomInserts(r, 20, 6)
	for _, up := range ups {
		if err := p.Update(up.U, up.V, up.W); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.Generation() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background compaction never ran")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !published.Load() {
		t.Fatal("OnPublish not called")
	}
	checkAllPairs(t, applied(base, ups), p)
}

func TestOpenRejectsMismatchedGraph(t *testing.T) {
	r := rand.New(rand.NewSource(88))
	base := randomGraph(r, 20, 10)
	dir := t.TempDir()
	p, err := Open(Options{Dir: dir, Graph: base})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Update(0, 5, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Compact(); err != nil {
		t.Fatal(err)
	}
	p.Close()
	other := randomGraph(r, 7, 3)
	if _, err := Open(Options{Dir: dir, Graph: other}); err == nil {
		t.Fatal("Open paired a checkpoint with a different graph")
	}
}
