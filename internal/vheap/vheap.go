// Package vheap provides the priority queues used by every Dijkstra variant
// in this repository (the paper's Algorithm 1 stores frontier vertices in a
// priority queue; enqueue/dequeue cost the O(log n) factor in its complexity
// analysis).
//
// Two implementations are provided so the choice can be benchmarked as an
// ablation:
//
//   - Indexed: a 4-ary min-heap with DecreaseKey, one slot per vertex.
//     4-ary beats binary for Dijkstra because sift-down dominates and a
//     wider node halves the tree height at the cost of three extra
//     comparisons that stay in one cache line.
//   - Lazy: a plain binary heap of (vertex, dist) pairs with duplicate
//     insertion and deletion-on-pop, the strategy most PLL codebases use.
package vheap

import "parapll/internal/graph"

// Indexed is a 4-ary min-heap keyed by distance with O(log n) DecreaseKey.
// It holds at most one entry per vertex. The zero value is not usable; call
// NewIndexed.
type Indexed struct {
	heap []graph.Vertex // heap[i] = vertex at heap position i
	pos  []int32        // pos[v] = position of v in heap, or -1
	key  []graph.Dist   // key[v] = current priority of v
}

// NewIndexed returns an empty indexed heap able to hold vertices in [0,n).
func NewIndexed(n int) *Indexed {
	h := &Indexed{
		heap: make([]graph.Vertex, 0, 64),
		pos:  make([]int32, n),
		key:  make([]graph.Dist, n),
	}
	for i := range h.pos {
		h.pos[i] = -1
	}
	return h
}

// Len returns the number of queued vertices.
func (h *Indexed) Len() int { return len(h.heap) }

// Contains reports whether v is currently queued.
func (h *Indexed) Contains(v graph.Vertex) bool { return h.pos[v] >= 0 }

// Key returns the current priority of a queued vertex v. The result is
// unspecified if v is not queued.
func (h *Indexed) Key(v graph.Vertex) graph.Dist { return h.key[v] }

// Push inserts v with priority d, or decreases v's priority to d if v is
// already queued with a larger priority. Pushing a queued vertex with a
// priority >= its current one is a no-op. It returns whether the heap
// changed.
func (h *Indexed) Push(v graph.Vertex, d graph.Dist) bool {
	if p := h.pos[v]; p >= 0 {
		if d >= h.key[v] {
			return false
		}
		h.key[v] = d
		h.siftUp(int(p))
		return true
	}
	h.key[v] = d
	h.pos[v] = int32(len(h.heap))
	h.heap = append(h.heap, v)
	h.siftUp(len(h.heap) - 1)
	return true
}

// Peek returns the vertex with the minimum priority without removing it.
// It panics on an empty heap.
func (h *Indexed) Peek() (graph.Vertex, graph.Dist) {
	v := h.heap[0]
	return v, h.key[v]
}

// Pop removes and returns the vertex with the minimum priority. It panics
// on an empty heap.
func (h *Indexed) Pop() (graph.Vertex, graph.Dist) {
	v := h.heap[0]
	d := h.key[v]
	last := len(h.heap) - 1
	h.pos[v] = -1
	if last > 0 {
		moved := h.heap[last]
		h.heap[0] = moved
		h.pos[moved] = 0
	}
	h.heap = h.heap[:last]
	if last > 1 {
		h.siftDown(0)
	}
	return v, d
}

// Reset empties the heap so it can be reused without reallocating. It runs
// in time proportional to the current size, not n.
func (h *Indexed) Reset() {
	for _, v := range h.heap {
		h.pos[v] = -1
	}
	h.heap = h.heap[:0]
}

func (h *Indexed) less(i, j int) bool {
	return h.key[h.heap[i]] < h.key[h.heap[j]]
}

func (h *Indexed) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.pos[h.heap[i]] = int32(i)
	h.pos[h.heap[j]] = int32(j)
}

func (h *Indexed) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 4
		if !h.less(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *Indexed) siftDown(i int) {
	n := len(h.heap)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if h.less(c, best) {
				best = c
			}
		}
		if !h.less(best, i) {
			return
		}
		h.swap(i, best)
		i = best
	}
}

// Lazy is a binary min-heap of (vertex, dist) pairs allowing duplicates.
// Callers detect and skip stale pops by comparing the popped distance with
// their own tentative-distance array, the standard "lazy deletion" Dijkstra
// idiom. The zero value is ready to use.
type Lazy struct {
	item []lazyItem
}

type lazyItem struct {
	d graph.Dist
	v graph.Vertex
}

// Len returns the number of queued entries (including stale duplicates).
func (h *Lazy) Len() int { return len(h.item) }

// Push inserts (v, d).
func (h *Lazy) Push(v graph.Vertex, d graph.Dist) {
	h.item = append(h.item, lazyItem{d: d, v: v})
	i := len(h.item) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.item[parent].d <= h.item[i].d {
			break
		}
		h.item[parent], h.item[i] = h.item[i], h.item[parent]
		i = parent
	}
}

// Pop removes and returns an entry with the minimum distance. It panics on
// an empty heap.
func (h *Lazy) Pop() (graph.Vertex, graph.Dist) {
	top := h.item[0]
	last := len(h.item) - 1
	h.item[0] = h.item[last]
	h.item = h.item[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= last {
			break
		}
		c := l
		if r < last && h.item[r].d < h.item[l].d {
			c = r
		}
		if h.item[i].d <= h.item[c].d {
			break
		}
		h.item[i], h.item[c] = h.item[c], h.item[i]
		i = c
	}
	return top.v, top.d
}

// Reset empties the heap, retaining capacity.
func (h *Lazy) Reset() { h.item = h.item[:0] }
