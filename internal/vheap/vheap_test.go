package vheap

import (
	"container/heap"
	"math/rand"
	"sort"
	"testing"

	"parapll/internal/graph"
)

// refHeap is a container/heap reference implementation used as the oracle
// in property tests.
type refItem struct {
	v graph.Vertex
	d graph.Dist
}
type refHeap []refItem

func (h refHeap) Len() int            { return len(h) }
func (h refHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(refItem)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func TestIndexedBasic(t *testing.T) {
	h := NewIndexed(10)
	if h.Len() != 0 {
		t.Fatal("new heap not empty")
	}
	h.Push(3, 30)
	h.Push(1, 10)
	h.Push(2, 20)
	if h.Len() != 3 {
		t.Fatalf("Len = %d, want 3", h.Len())
	}
	if !h.Contains(1) || h.Contains(5) {
		t.Error("Contains wrong")
	}
	if k := h.Key(2); k != 20 {
		t.Errorf("Key(2) = %d, want 20", k)
	}
	v, d := h.Pop()
	if v != 1 || d != 10 {
		t.Fatalf("Pop = (%d,%d), want (1,10)", v, d)
	}
	if h.Contains(1) {
		t.Error("popped vertex still Contains")
	}
}

func TestIndexedDecreaseKey(t *testing.T) {
	h := NewIndexed(5)
	h.Push(0, 100)
	h.Push(1, 50)
	if !h.Push(0, 10) {
		t.Fatal("decrease should report change")
	}
	if h.Push(0, 99) {
		t.Fatal("increase attempt should be a no-op")
	}
	if h.Push(0, 10) {
		t.Fatal("equal-key push should be a no-op")
	}
	v, d := h.Pop()
	if v != 0 || d != 10 {
		t.Fatalf("Pop = (%d,%d), want (0,10)", v, d)
	}
}

func TestIndexedPopOrder(t *testing.T) {
	h := NewIndexed(100)
	r := rand.New(rand.NewSource(1))
	keys := make([]graph.Dist, 100)
	for v := 0; v < 100; v++ {
		keys[v] = graph.Dist(r.Intn(1000))
		h.Push(graph.Vertex(v), keys[v])
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for i := 0; i < 100; i++ {
		_, d := h.Pop()
		if d != keys[i] {
			t.Fatalf("pop %d: got %d, want %d", i, d, keys[i])
		}
	}
	if h.Len() != 0 {
		t.Fatal("heap not empty after draining")
	}
}

func TestIndexedReset(t *testing.T) {
	h := NewIndexed(10)
	h.Push(4, 4)
	h.Push(5, 5)
	h.Reset()
	if h.Len() != 0 || h.Contains(4) || h.Contains(5) {
		t.Fatal("Reset did not clear heap")
	}
	h.Push(4, 40)
	if v, d := h.Pop(); v != 4 || d != 40 {
		t.Fatal("heap unusable after Reset")
	}
}

// TestIndexedAgainstReference drives the indexed heap and a container/heap
// oracle with the same random operation sequence, including decrease-keys,
// and checks every pop agrees on distance.
func TestIndexedAgainstReference(t *testing.T) {
	const n = 200
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		h := NewIndexed(n)
		best := make(map[graph.Vertex]graph.Dist)
		for op := 0; op < 500; op++ {
			if r.Intn(3) > 0 || h.Len() == 0 {
				v := graph.Vertex(r.Intn(n))
				d := graph.Dist(r.Intn(10000))
				h.Push(v, d)
				if old, ok := best[v]; !ok || d < old {
					best[v] = d
				}
			} else {
				v, d := h.Pop()
				want, ok := best[v]
				if !ok {
					t.Fatalf("popped vertex %d never pushed", v)
				}
				if d != want {
					t.Fatalf("popped (%d,%d), want key %d", v, d, want)
				}
				delete(best, v)
				// d must be <= every remaining key (min-heap order).
				for _, rest := range best {
					if rest < d {
						t.Fatalf("pop returned %d but %d remains queued", d, rest)
					}
				}
			}
		}
		// Drain; verify global sorted order and exact multiset.
		var popped []graph.Dist
		for h.Len() > 0 {
			_, d := h.Pop()
			popped = append(popped, d)
		}
		if len(popped) != len(best) {
			t.Fatalf("drained %d, want %d", len(popped), len(best))
		}
		if !sort.SliceIsSorted(popped, func(i, j int) bool { return popped[i] < popped[j] }) {
			t.Fatal("drain not sorted")
		}
	}
}

func TestLazyAgainstReference(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for trial := 0; trial < 20; trial++ {
		var h Lazy
		ref := &refHeap{}
		for op := 0; op < 500; op++ {
			if r.Intn(2) == 0 || h.Len() == 0 {
				v := graph.Vertex(r.Intn(100))
				d := graph.Dist(r.Intn(10000))
				h.Push(v, d)
				heap.Push(ref, refItem{v: v, d: d})
			} else {
				_, d := h.Pop()
				want := heap.Pop(ref).(refItem)
				if d != want.d {
					t.Fatalf("lazy pop %d, reference %d", d, want.d)
				}
			}
		}
	}
}

func TestLazyDuplicates(t *testing.T) {
	var h Lazy
	h.Push(7, 30)
	h.Push(7, 10)
	h.Push(7, 20)
	if h.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (duplicates allowed)", h.Len())
	}
	for i, want := range []graph.Dist{10, 20, 30} {
		v, d := h.Pop()
		if v != 7 || d != want {
			t.Fatalf("pop %d: got (%d,%d), want (7,%d)", i, v, d, want)
		}
	}
}

func TestLazyReset(t *testing.T) {
	var h Lazy
	h.Push(1, 1)
	h.Reset()
	if h.Len() != 0 {
		t.Fatal("Reset did not empty lazy heap")
	}
}

func TestIndexedPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty Pop")
		}
	}()
	NewIndexed(1).Pop()
}

func TestLazyPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty Pop")
		}
	}()
	var h Lazy
	h.Pop()
}

func BenchmarkIndexedPushPop(b *testing.B) {
	const n = 1 << 16
	h := NewIndexed(n)
	r := rand.New(rand.NewSource(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 1024; j++ {
			h.Push(graph.Vertex(r.Intn(n)), graph.Dist(r.Intn(1<<20)))
		}
		for h.Len() > 0 {
			h.Pop()
		}
	}
}

func BenchmarkLazyPushPop(b *testing.B) {
	var h Lazy
	r := rand.New(rand.NewSource(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 1024; j++ {
			h.Push(graph.Vertex(r.Intn(1<<16)), graph.Dist(r.Intn(1<<20)))
		}
		for h.Len() > 0 {
			h.Pop()
		}
	}
}
