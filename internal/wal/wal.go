// Package wal is the durable edge-update log of the living-graph
// pipeline: every InsertEdge a serving process accepts is appended here
// — and fsynced — before it touches the in-memory index, so a crash at
// any instant loses nothing that was acknowledged. On restart the log
// is replayed on top of the last compacted checkpoint to reconstruct
// the exact pre-crash state.
//
// # Record format
//
// The log is a single file: a 16-byte header followed by fixed-width
// 16-byte records, all little-endian.
//
//	header: "PWAL" magic | uint32 version (1) | 8 reserved zero bytes
//	record: uint32 u | uint32 v | uint32 w | uint32 crc
//
// crc is the IEEE CRC-32 of the record's first 12 bytes. Fixed-width
// framing makes crash recovery a pure prefix computation: a torn final
// record is simply a file length that is not a whole number of records,
// and a bit flip anywhere turns its record's CRC red. In both cases
// replay keeps the longest consistent prefix and Open truncates the
// rest away — the LSM-style WAL discipline, where the tail beyond the
// last durable record is garbage by definition.
//
// # Decoding invariants
//
// Replay is a wire decoder and is held to the same rules as the cluster
// frame and PIDM parsers (the infguard analyzer's contract): a decoded
// weight is bounds-checked against graph.Inf before it becomes a
// graph.Dist, and decoded endpoints must be distinct, in-int32-range
// vertex ids. A CRC-valid record violating either can only be
// corruption that collided with the checksum; it ends the consistent
// prefix rather than entering the index.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"sync"
	"time"

	"parapll/internal/fileio"
	"parapll/internal/graph"
)

// Update is one logged edge insertion.
type Update struct {
	U, V graph.Vertex
	W    graph.Dist
}

const (
	// HeaderSize is the byte length of the file header.
	HeaderSize = 16
	// RecordSize is the byte length of one framed record.
	RecordSize = 16

	version = 1
)

var magic = [4]byte{'P', 'W', 'A', 'L'}

// header returns the canonical 16-byte file header.
func header() []byte {
	h := make([]byte, HeaderSize)
	copy(h, magic[:])
	binary.LittleEndian.PutUint32(h[4:8], version)
	return h
}

// encodeRecord frames one update into dst (len >= RecordSize).
func encodeRecord(dst []byte, up Update) {
	binary.LittleEndian.PutUint32(dst[0:4], uint32(up.U))
	binary.LittleEndian.PutUint32(dst[4:8], uint32(up.V))
	binary.LittleEndian.PutUint32(dst[8:12], uint32(up.W))
	binary.LittleEndian.PutUint32(dst[12:16], crc32.ChecksumIEEE(dst[0:12]))
}

// decodeRecord parses one framed record, reporting ok=false for any
// frame that must end the consistent prefix: CRC mismatch, endpoint
// out of the int32 vertex-id range, a self loop, or a weight that
// would decode to the Inf sentinel (an Inf "distance" must never enter
// the index as a finite label, so a frame carrying one is corruption
// no matter what its checksum says).
func decodeRecord(rec []byte) (Update, bool) {
	if crc32.ChecksumIEEE(rec[0:12]) != binary.LittleEndian.Uint32(rec[12:16]) {
		return Update{}, false
	}
	ru := binary.LittleEndian.Uint32(rec[0:4])
	rv := binary.LittleEndian.Uint32(rec[4:8])
	rw := binary.LittleEndian.Uint32(rec[8:12])
	if ru > math.MaxInt32 || rv > math.MaxInt32 || ru == rv {
		return Update{}, false
	}
	if rw >= graph.Inf || rw == 0 {
		return Update{}, false
	}
	return Update{U: graph.Vertex(ru), V: graph.Vertex(rv), W: graph.Dist(rw)}, true
}

// Replay decodes the longest consistent prefix of a WAL file image and
// returns its updates plus the byte length of that prefix. A file too
// short for the header, or with a wrong magic or version, replays as
// empty with consumed 0 (the caller decides whether that is a fresh
// log or an error). Replay never fails and never panics: anything
// beyond the consistent prefix is ignored, which is exactly the crash
// semantics Open enforces on disk by truncation.
func Replay(data []byte) (ups []Update, consumed int) {
	if len(data) < HeaderSize {
		return nil, 0
	}
	if string(data[0:4]) != string(magic[:]) ||
		binary.LittleEndian.Uint32(data[4:8]) != version {
		return nil, 0
	}
	consumed = HeaderSize
	for consumed+RecordSize <= len(data) {
		up, ok := decodeRecord(data[consumed : consumed+RecordSize])
		if !ok {
			break
		}
		ups = append(ups, up)
		consumed += RecordSize
	}
	return ups, consumed
}

// Log is an append-only edge-update log bound to one file. All methods
// are safe for concurrent use, but the intended discipline is the
// pipeline's: a single writer appends, truncation happens inside the
// writer's critical section, and readers consume the Updates snapshot
// the writer hands them.
type Log struct {
	mu    sync.Mutex
	path  string
	f     *os.File
	ups   []Update
	bytes int64

	// syncObs, when set, is called with the duration of each successful
	// Append fsync — the living-graph pipeline's durability latency, and
	// the signal the anomaly watchdog turns into a WAL-fsync SLO. Set
	// under mu (SetSyncObserver) and read under mu (Append), so no
	// atomics are needed.
	syncObs func(elapsed time.Duration)
}

// SetSyncObserver installs (or, with nil, removes) the per-Append fsync
// latency callback. The observer runs inside Append's critical section
// and must be cheap and non-blocking — a histogram Observe, not I/O.
func (l *Log) SetSyncObserver(f func(elapsed time.Duration)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.syncObs = f
}

// Open opens (or creates) the log at path and replays it. Any torn or
// corrupt tail is truncated away on disk — the file always ends at the
// last durable record afterwards — and the surviving updates are
// returned in append order. The returned slice is the caller's to keep;
// it is not aliased by the Log's own state.
func Open(path string) (*Log, []Update, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		data = nil
	} else if err != nil {
		return nil, nil, fmt.Errorf("wal: reading %s: %w", path, err)
	}
	var ups []Update
	consumed := 0
	fresh := len(data) < HeaderSize
	if !fresh {
		ups, consumed = Replay(data)
		if consumed == 0 {
			return nil, nil, fmt.Errorf("wal: %s exists but is not a parapll WAL (bad magic or version)", path)
		}
	}
	if fresh {
		// Missing, empty, or torn mid-header-write: (re)create with a
		// clean header through the atomic-write discipline so a crash
		// here cannot leave a half-written header behind either.
		if err := fileio.WriteAtomic(path, func(f *os.File) error {
			_, werr := f.Write(header())
			return werr
		}); err != nil {
			return nil, nil, fmt.Errorf("wal: creating %s: %w", path, err)
		}
		consumed = HeaderSize
	} else if consumed < len(data) {
		// Torn or corrupt tail: drop it so the next append starts at a
		// record boundary and a future replay sees only durable records.
		if err := truncateTo(path, int64(consumed)); err != nil {
			return nil, nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: opening %s for append: %w", path, err)
	}
	l := &Log{path: path, f: f, bytes: int64(consumed)}
	l.ups = append(l.ups, ups...)
	out := make([]Update, len(ups))
	copy(out, ups)
	return l, out, nil
}

// truncateTo shrinks the file to n bytes and fsyncs, making the
// discarded tail durably gone before any new record lands after it.
func truncateTo(path string, n int64) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: truncating %s: %w", path, err)
	}
	defer f.Close()
	if err := f.Truncate(n); err != nil {
		return fmt.Errorf("wal: truncating %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync after truncate of %s: %w", path, err)
	}
	return nil
}

// Append frames, writes and fsyncs one update. It returns only after
// the record is durable, so an acknowledged insert survives kill -9.
// Updates the in-memory mirror only on success: a failed or partial
// write leaves a torn tail for the next Open to truncate, never a
// phantom in-memory record.
func (l *Log) Append(u, v graph.Vertex, w graph.Dist) error {
	if u == v || int32(u) < 0 || int32(v) < 0 {
		return fmt.Errorf("wal: invalid edge {%d,%d}", u, v)
	}
	if w == 0 || w >= graph.Inf {
		return fmt.Errorf("wal: invalid weight %d (want 0 < w < Inf)", w)
	}
	var rec [RecordSize]byte
	encodeRecord(rec[:], Update{U: u, V: v, W: w})
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("wal: log is closed")
	}
	if _, err := l.f.Write(rec[:]); err != nil {
		return fmt.Errorf("wal: appending to %s: %w", l.path, err)
	}
	t0 := time.Now()
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync of %s: %w", l.path, err)
	}
	if l.syncObs != nil {
		l.syncObs(time.Since(t0))
	}
	l.ups = append(l.ups, Update{U: u, V: v, W: w})
	l.bytes += RecordSize
	return nil
}

// Len returns the number of durable records.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ups)
}

// Bytes returns the current on-disk size (header + records).
func (l *Log) Bytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytes
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Updates returns the in-memory mirror of the durable records, oldest
// first. The slice is a copy; the caller may keep it across appends.
func (l *Log) Updates() []Update {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Update, len(l.ups))
	copy(out, l.ups)
	return out
}

// TruncateFront durably drops the first n records — the ones a
// completed compaction has folded into the checkpoint artifact. The
// rewrite goes through the same atomic temp-file + fsync + rename +
// directory-fsync discipline as every other artifact in the repo, so a
// crash mid-truncation leaves either the old log (records replay
// idempotently on top of the new checkpoint) or the new one, never a
// mangled hybrid.
func (l *Log) TruncateFront(n int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n <= 0 {
		return nil
	}
	if n > len(l.ups) {
		return fmt.Errorf("wal: TruncateFront(%d) beyond %d records", n, len(l.ups))
	}
	if l.f == nil {
		return fmt.Errorf("wal: log is closed")
	}
	rest := l.ups[n:]
	err := fileio.WriteAtomic(l.path, func(f *os.File) error {
		if _, werr := f.Write(header()); werr != nil {
			return werr
		}
		var rec [RecordSize]byte
		for _, up := range rest {
			encodeRecord(rec[:], up)
			if _, werr := f.Write(rec[:]); werr != nil {
				return werr
			}
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("wal: rewriting %s: %w", l.path, err)
	}
	// The old handle points at the renamed-over inode; reopen the new
	// file for subsequent appends.
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: closing old log file: %w", err)
	}
	f, err := os.OpenFile(l.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		l.f = nil
		return fmt.Errorf("wal: reopening %s: %w", l.path, err)
	}
	l.f = f
	kept := make([]Update, len(rest))
	copy(kept, rest)
	l.ups = kept
	l.bytes = int64(HeaderSize + RecordSize*len(kept))
	return nil
}

// Close releases the file handle. Appends after Close fail.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}
