package wal

import (
	"testing"
	"time"
)

// TestSyncObserver: the fsync-latency callback fires once per
// successful Append with a sane duration, and removing it stops the
// callbacks.
func TestSyncObserver(t *testing.T) {
	l, _ := openEmpty(t)
	defer l.Close()

	var calls int
	var last time.Duration
	l.SetSyncObserver(func(d time.Duration) {
		calls++
		last = d
	})
	if err := l.Append(0, 1, 7); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Append(1, 2, 3); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if calls != 2 {
		t.Fatalf("observer fired %d times, want 2", calls)
	}
	if last < 0 {
		t.Fatalf("observed negative fsync duration %v", last)
	}

	// A rejected append never reaches the fsync, so no callback.
	if err := l.Append(5, 5, 1); err == nil {
		t.Fatal("self-loop append succeeded")
	}
	if calls != 2 {
		t.Fatalf("observer fired on a rejected append (calls=%d)", calls)
	}

	l.SetSyncObserver(nil)
	if err := l.Append(2, 3, 9); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if calls != 2 {
		t.Fatalf("observer fired after removal (calls=%d)", calls)
	}
}
