package wal

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"parapll/internal/graph"
)

func openEmpty(t *testing.T) (*Log, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal.log")
	l, ups, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if len(ups) != 0 {
		t.Fatalf("fresh log replayed %d updates", len(ups))
	}
	return l, path
}

func TestAppendReplayRoundTrip(t *testing.T) {
	l, path := openEmpty(t)
	want := []Update{
		{U: 0, V: 1, W: 7},
		{U: 3, V: 2, W: 1},
		{U: 5, V: 9, W: graph.Inf - 1},
	}
	for _, up := range want {
		if err := l.Append(up.U, up.V, up.W); err != nil {
			t.Fatalf("Append(%v): %v", up, err)
		}
	}
	if l.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", l.Len(), len(want))
	}
	if got := l.Bytes(); got != int64(HeaderSize+RecordSize*len(want)) {
		t.Fatalf("Bytes = %d", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, ups, err := Open(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if len(ups) != len(want) {
		t.Fatalf("replayed %d updates, want %d", len(ups), len(want))
	}
	for i := range want {
		if ups[i] != want[i] {
			t.Fatalf("update %d = %v, want %v", i, ups[i], want[i])
		}
	}
}

func TestAppendRejectsInvalid(t *testing.T) {
	l, _ := openEmpty(t)
	cases := []Update{
		{U: 4, V: 4, W: 3},         // self loop
		{U: 0, V: 1, W: 0},         // nonpositive weight
		{U: 0, V: 1, W: graph.Inf}, // Inf sentinel
		{U: -1, V: 1, W: 2},        // negative id
	}
	for _, up := range cases {
		if err := l.Append(up.U, up.V, up.W); err == nil {
			t.Errorf("Append(%v) accepted", up)
		}
	}
	if l.Len() != 0 {
		t.Fatalf("invalid appends changed Len to %d", l.Len())
	}
}

// TestTornTailTruncated cuts the file at every byte boundary of the
// final record and checks Open replays exactly the whole-record prefix,
// then physically truncates the file back to that prefix.
func TestTornTailTruncated(t *testing.T) {
	l, path := openEmpty(t)
	for i := graph.Vertex(0); i < 4; i++ {
		if err := l.Append(i, i+1, graph.Dist(i)+1); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := HeaderSize; cut <= len(whole); cut++ {
		dir := t.TempDir()
		p := filepath.Join(dir, "wal.log")
		if err := os.WriteFile(p, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, ups, err := Open(p)
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		wantRecs := (cut - HeaderSize) / RecordSize
		if len(ups) != wantRecs {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, len(ups), wantRecs)
		}
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() != int64(HeaderSize+wantRecs*RecordSize) {
			t.Fatalf("cut %d: file not truncated to prefix: %d bytes", cut, fi.Size())
		}
		// The truncated log must accept new appends at the boundary.
		if err := l2.Append(100, 101, 5); err != nil {
			t.Fatalf("cut %d: append after truncation: %v", cut, err)
		}
		l2.Close()
	}
}

// TestBitFlipEndsPrefix flips one byte inside each record in turn and
// checks replay stops at that record — a consistent prefix, never a
// skip-and-continue.
func TestBitFlipEndsPrefix(t *testing.T) {
	l, path := openEmpty(t)
	const recs = 5
	for i := graph.Vertex(0); i < recs; i++ {
		if err := l.Append(i, i+1, 2); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < recs; r++ {
		for _, off := range []int{0, 5, 11, 13} {
			data := append([]byte(nil), whole...)
			data[HeaderSize+r*RecordSize+off] ^= 0x40
			ups, consumed := Replay(data)
			if len(ups) != r {
				t.Fatalf("flip rec %d byte %d: replayed %d, want %d", r, off, len(ups), r)
			}
			if consumed != HeaderSize+r*RecordSize {
				t.Fatalf("flip rec %d byte %d: consumed %d", r, off, consumed)
			}
		}
	}
}

func TestBadMagicRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	if err := os.WriteFile(path, []byte("NOTAWAL0________"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path); err == nil {
		t.Fatal("Open accepted a non-WAL file")
	}
	// A wrong version is the same refusal.
	h := header()
	binary.LittleEndian.PutUint32(h[4:8], 99)
	if err := os.WriteFile(path, h, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path); err == nil {
		t.Fatal("Open accepted an unknown WAL version")
	}
}

func TestShortFileRecreated(t *testing.T) {
	// A file shorter than the header means the process died while
	// creating the log; Open must recover to a clean empty log.
	path := filepath.Join(t.TempDir(), "wal.log")
	if err := os.WriteFile(path, []byte("PW"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, ups, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if len(ups) != 0 {
		t.Fatalf("replayed %d updates from torn header", len(ups))
	}
	if err := l.Append(1, 2, 3); err != nil {
		t.Fatal(err)
	}
	l.Close()
}

func TestTruncateFront(t *testing.T) {
	l, path := openEmpty(t)
	all := []Update{{0, 1, 1}, {1, 2, 2}, {2, 3, 3}, {3, 4, 4}}
	for _, up := range all {
		if err := l.Append(up.U, up.V, up.W); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.TruncateFront(3); err != nil {
		t.Fatalf("TruncateFront: %v", err)
	}
	if l.Len() != 1 {
		t.Fatalf("Len after truncate = %d", l.Len())
	}
	// Appends continue on the rewritten file.
	if err := l.Append(7, 8, 9); err != nil {
		t.Fatalf("append after TruncateFront: %v", err)
	}
	l.Close()
	_, ups, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []Update{{3, 4, 4}, {7, 8, 9}}
	if len(ups) != len(want) {
		t.Fatalf("replayed %d, want %d", len(ups), len(want))
	}
	for i := range want {
		if ups[i] != want[i] {
			t.Fatalf("update %d = %v, want %v", i, ups[i], want[i])
		}
	}
	// Dropping everything leaves a bare header.
	l2, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.TruncateFront(2); err != nil {
		t.Fatal(err)
	}
	if got := l2.Bytes(); got != HeaderSize {
		t.Fatalf("Bytes after full truncate = %d", got)
	}
	if err := l2.TruncateFront(1); err == nil {
		t.Fatal("TruncateFront beyond length accepted")
	}
	l2.Close()
}

// TestReplayIdempotentAfterReopen re-opens an already-truncated log and
// checks the replay is byte-for-byte stable (no record is re-framed
// differently on rewrite).
func TestReplayIdempotentAfterReopen(t *testing.T) {
	l, path := openEmpty(t)
	for i := graph.Vertex(0); i < 6; i++ {
		if err := l.Append(i, i+10, 4); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.TruncateFront(2); err != nil {
		t.Fatal(err)
	}
	l.Close()
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	l2, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	l2.Close()
	second, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("reopen changed the log bytes")
	}
}
