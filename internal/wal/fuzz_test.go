package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"parapll/internal/graph"
)

// seedWALFiles builds representative log images: empty, populated,
// truncated mid-record, bit-flipped, and non-WAL garbage.
func seedWALFiles(tb testing.TB) [][]byte {
	build := func(ups []Update) []byte {
		data := header()
		for _, up := range ups {
			var rec [RecordSize]byte
			encodeRecord(rec[:], up)
			data = append(data, rec[:]...)
		}
		return data
	}
	files := [][]byte{
		build(nil),
		build([]Update{{U: 0, V: 1, W: 1}}),
		build([]Update{{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 7}, {U: 1, V: 3, W: graph.Inf - 1}}),
	}
	if whole := files[2]; true {
		files = append(files, whole[:len(whole)-5]) // torn tail
		flipped := append([]byte(nil), whole...)
		flipped[HeaderSize+RecordSize+3] ^= 0x10 // corrupt middle record
		files = append(files, flipped)
	}
	files = append(files, []byte("PWALnope"), []byte{}, []byte("PIDM"))
	return files
}

// FuzzWALReplay drives the replay decoder with arbitrary bytes. It must
// never panic, must only admit semantically valid records (distinct
// in-range endpoints, 0 < w < Inf), must consume a whole-record prefix,
// and the accepted prefix must survive an Open/append/reopen cycle
// bit-identically — the consistency contract crash recovery rests on.
func FuzzWALReplay(f *testing.F) {
	for _, data := range seedWALFiles(f) {
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		ups, consumed := Replay(data)
		if consumed == 0 {
			if len(ups) != 0 {
				t.Fatalf("no bytes consumed but %d updates replayed", len(ups))
			}
			return
		}
		if consumed < HeaderSize || consumed > len(data) {
			t.Fatalf("consumed %d outside [header,%d]", consumed, len(data))
		}
		if (consumed-HeaderSize)%RecordSize != 0 {
			t.Fatalf("consumed %d is not a whole-record prefix", consumed)
		}
		if got := (consumed - HeaderSize) / RecordSize; got != len(ups) {
			t.Fatalf("consumed %d records but returned %d updates", got, len(ups))
		}
		for i, up := range ups {
			if up.U == up.V || int32(up.U) < 0 || int32(up.V) < 0 {
				t.Fatalf("update %d has invalid endpoints %v", i, up)
			}
			if up.W == 0 || up.W >= graph.Inf {
				t.Fatalf("update %d has invalid weight %d", i, up.W)
			}
		}
		// Open must accept the same image, truncate the junk tail, and
		// replay the identical prefix — then keep accepting appends.
		dir := t.TempDir()
		path := filepath.Join(dir, "wal.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, got, err := Open(path)
		if err != nil {
			t.Fatalf("Open rejected a replayable image: %v", err)
		}
		defer l.Close()
		if len(got) != len(ups) {
			t.Fatalf("Open replayed %d updates, Replay %d", len(got), len(ups))
		}
		for i := range ups {
			if got[i] != ups[i] {
				t.Fatalf("update %d: Open %v vs Replay %v", i, got[i], ups[i])
			}
		}
		if err := l.Append(0, 1<<20, 9); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if l.Len() != len(ups)+1 {
			t.Fatalf("Len after append = %d, want %d", l.Len(), len(ups)+1)
		}
	})
}

// TestRegenFuzzCorpus writes the seed WAL images as go-fuzz corpus
// files under testdata/fuzz/FuzzWALReplay. It is a no-op unless
// PARAPLL_REGEN_CORPUS=1, so the checked-in corpus stays reproducible
// from the encoder instead of being hand-maintained hex.
func TestRegenFuzzCorpus(t *testing.T) {
	if os.Getenv("PARAPLL_REGEN_CORPUS") != "1" {
		t.Skip("set PARAPLL_REGEN_CORPUS=1 to rewrite testdata/fuzz")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzWALReplay")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, data := range seedWALFiles(t) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		name := filepath.Join(dir, fmt.Sprintf("seed-wal-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
