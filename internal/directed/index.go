package directed

import (
	"sort"

	"parapll/internal/graph"
	"parapll/internal/label"
	"parapll/internal/vheap"
)

// Index is a directed 2-hop cover: per vertex, a hub-sorted in-label
// list (hubs reaching it) and out-label list (hubs it reaches).
type Index struct {
	in  [][]label.Entry
	out [][]label.Entry
}

// Options configures a directed build.
type Options struct {
	// Order is the computing sequence; nil means degree descending.
	Order []graph.Vertex
}

// Build indexes a directed graph serially: per root, one forward and one
// backward pruned Dijkstra.
func Build(g *Digraph, opt Options) *Index {
	n := g.NumVertices()
	ord := opt.Order
	if ord == nil {
		ord = DegreeOrder(g)
	} else if len(ord) != n {
		panic("directed: Order must be a permutation of the vertices")
	}
	x := &Index{
		in:  make([][]label.Entry, n),
		out: make([][]label.Entry, n),
	}
	dist := make([]graph.Dist, n)
	tmp := make([]graph.Dist, n)
	for i := 0; i < n; i++ {
		dist[i] = graph.Inf
		tmp[i] = graph.Inf
	}
	h := vheap.NewIndexed(n)
	var touched, hubs []graph.Vertex

	// search runs one pruned Dijkstra from r. Forward direction expands
	// out-arcs and labels Lin(u) with (r, d(r→u)), pruning when the
	// cover already answers r→u; backward expands in-arcs and labels
	// Lout(u) with (r, d(u→r)).
	search := func(r graph.Vertex, forward bool) {
		// Scatter the root's own labels for the prune query:
		// forward prune of (r→u) needs min over h ∈ Lout(r)∩Lin(u);
		// backward prune of (u→r) needs min over h ∈ Lout(u)∩Lin(r).
		var rootSide []label.Entry
		if forward {
			rootSide = x.out[r]
		} else {
			rootSide = x.in[r]
		}
		for _, e := range rootSide {
			if e.D < tmp[e.Hub] {
				tmp[e.Hub] = e.D
			}
			hubs = append(hubs, e.Hub)
		}
		dist[r] = 0
		touched = append(touched, r)
		h.Reset()
		h.Push(r, 0)
		for h.Len() > 0 {
			u, d := h.Pop()
			var uSide []label.Entry
			if forward {
				uSide = x.in[u]
			} else {
				uSide = x.out[u]
			}
			covered := false
			for _, e := range uSide {
				if t := tmp[e.Hub]; t != graph.Inf && graph.AddDist(t, e.D) <= d {
					covered = true
					break
				}
			}
			if covered {
				continue
			}
			if forward {
				x.in[u] = append(x.in[u], label.Entry{Hub: r, D: d})
			} else {
				x.out[u] = append(x.out[u], label.Entry{Hub: r, D: d})
			}
			var ns []graph.Vertex
			var ws []graph.Dist
			if forward {
				ns, ws = g.Out(u)
			} else {
				ns, ws = g.In(u)
			}
			for i, v := range ns {
				nd := graph.AddDist(d, ws[i])
				if nd < dist[v] {
					if dist[v] == graph.Inf {
						touched = append(touched, v)
					}
					dist[v] = nd
					h.Push(v, nd)
				}
			}
		}
		for _, t := range touched {
			dist[t] = graph.Inf
		}
		touched = touched[:0]
		for _, hb := range hubs {
			tmp[hb] = graph.Inf
		}
		hubs = hubs[:0]
	}

	for _, r := range ord {
		search(r, true)
		search(r, false)
	}
	// Sort label lists by hub for merge-join queries.
	for v := 0; v < n; v++ {
		sortEntries(x.in[v])
		sortEntries(x.out[v])
	}
	return x
}

func sortEntries(l []label.Entry) {
	sort.Slice(l, func(i, j int) bool { return l[i].Hub < l[j].Hub })
}

// Query returns the exact directed distance d(s→t), graph.Inf when t is
// unreachable from s. Note Query(s,t) and Query(t,s) generally differ.
func (x *Index) Query(s, t graph.Vertex) graph.Dist {
	if s == t {
		return 0
	}
	a := x.out[s] // hubs s reaches
	b := x.in[t]  // hubs reaching t
	best := graph.Inf
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Hub < b[j].Hub:
			i++
		case a[i].Hub > b[j].Hub:
			j++
		default:
			if d := graph.AddDist(a[i].D, b[j].D); d < best {
				best = d
			}
			i++
			j++
		}
	}
	return best
}

// QueryWithHub is Query but also reports the meeting hub achieving the
// minimum; hub is -1 when t is unreachable from s, and (0, s) is
// returned for s == t.
func (x *Index) QueryWithHub(s, t graph.Vertex) (graph.Dist, graph.Vertex) {
	if s == t {
		return 0, s
	}
	a := x.out[s]
	b := x.in[t]
	best := graph.Inf
	hub := graph.Vertex(-1)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Hub < b[j].Hub:
			i++
		case a[i].Hub > b[j].Hub:
			j++
		default:
			if d := graph.AddDist(a[i].D, b[j].D); d < best {
				best = d
				hub = a[i].Hub
			}
			i++
			j++
		}
	}
	return best, hub
}

// QueryBatch answers many directed (s,t) pairs in parallel (threads <= 0
// means GOMAXPROCS). The index is immutable, so no synchronization is
// needed.
func (x *Index) QueryBatch(pairs [][2]graph.Vertex, threads int) []graph.Dist {
	return graph.BatchQuery(x.Query, pairs, threads)
}

// NumVertices returns the number of labeled vertices.
func (x *Index) NumVertices() int { return len(x.in) }

// NumEntries returns the total number of in+out label entries.
func (x *Index) NumEntries() int64 {
	var total int64
	for v := range x.in {
		total += int64(len(x.in[v]) + len(x.out[v]))
	}
	return total
}

// AvgLabelSize returns mean (in+out) entries per vertex.
func (x *Index) AvgLabelSize() float64 {
	if len(x.in) == 0 {
		return 0
	}
	return float64(x.NumEntries()) / float64(len(x.in))
}
