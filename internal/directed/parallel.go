package directed

import (
	"runtime"
	"sync"

	"parapll/internal/core"
	"parapll/internal/graph"
	"parapll/internal/label"
	"parapll/internal/task"
	"parapll/internal/vheap"
)

// ParallelOptions configures a parallel directed build.
type ParallelOptions struct {
	// Threads is the number of workers; <= 0 means GOMAXPROCS.
	Threads int
	// Policy is the task assignment policy (core.Static or core.Dynamic).
	Policy core.Policy
	// Order is the computing sequence; nil means degree descending.
	Order []graph.Vertex
}

// BuildParallel is the ParaPLL treatment of the directed index: workers
// claim roots from the task manager and run the forward+backward pruned
// Dijkstra pair against shared concurrent in/out label stores (the same
// lock-free-read, per-vertex-append stores as the undirected core).
// Correctness under stale snapshots follows the same Proposition 1
// argument: both label sets only ever hold real path lengths.
func BuildParallel(g *Digraph, opt ParallelOptions) *Index {
	n := g.NumVertices()
	ord := opt.Order
	if ord == nil {
		ord = DegreeOrder(g)
	} else if len(ord) != n {
		panic("directed: Order must be a permutation of the vertices")
	}
	threads := opt.Threads
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	var mgr task.Manager
	if opt.Policy == core.Dynamic {
		mgr = task.NewDynamic(ord, threads, 1)
	} else {
		mgr = task.NewStatic(ord, threads)
	}
	inStore := label.NewStore(n)
	outStore := label.NewStore(n)

	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ps := newParSearcher(g)
			for {
				r, _, ok := mgr.Next(w)
				if !ok {
					return
				}
				// Forward: prune via Lout(r) x Lin(u), label Lin.
				ps.run(r, true, outStore, inStore)
				// Backward: prune via Lin(r) x Lout(u), label Lout.
				ps.run(r, false, inStore, outStore)
			}
		}(w)
	}
	wg.Wait()

	x := &Index{in: make([][]label.Entry, n), out: make([][]label.Entry, n)}
	for v := 0; v < n; v++ {
		x.in[v] = dedupSorted(inStore.Snapshot(graph.Vertex(v)))
		x.out[v] = dedupSorted(outStore.Snapshot(graph.Vertex(v)))
	}
	return x
}

// dedupSorted copies, hub-sorts and min-dedupes one label list.
func dedupSorted(snap []label.Entry) []label.Entry {
	lists := [][]label.Entry{snap}
	// Reuse the canonical finalizer for a single row.
	idx := label.NewIndexFromLists(lists)
	defer runtime.KeepAlive(idx)
	hubs, dists := idx.Label(0)
	out := make([]label.Entry, len(hubs))
	for i := range hubs {
		out[i] = label.Entry{Hub: hubs[i], D: dists[i]}
	}
	return out
}

// parSearcher is the per-worker scratch for directed pruned Dijkstra.
type parSearcher struct {
	g       *Digraph
	dist    []graph.Dist
	tmp     []graph.Dist
	touched []graph.Vertex
	hubs    []graph.Vertex
	heap    *vheap.Indexed
}

func newParSearcher(g *Digraph) *parSearcher {
	n := g.NumVertices()
	ps := &parSearcher{
		g:    g,
		dist: make([]graph.Dist, n),
		tmp:  make([]graph.Dist, n),
		heap: vheap.NewIndexed(n),
	}
	for i := 0; i < n; i++ {
		ps.dist[i] = graph.Inf
		ps.tmp[i] = graph.Inf
	}
	return ps
}

// run executes one pruned Dijkstra from r. rootStore holds the root-side
// labels for the prune query; sideStore is where new labels land (and
// whose per-vertex lists feed the other half of the prune query).
func (ps *parSearcher) run(r graph.Vertex, forward bool, rootStore, sideStore *label.Store) {
	for _, e := range rootStore.Snapshot(r) {
		if e.D < ps.tmp[e.Hub] {
			ps.tmp[e.Hub] = e.D
		}
		ps.hubs = append(ps.hubs, e.Hub)
	}
	ps.dist[r] = 0
	ps.touched = append(ps.touched, r)
	ps.heap.Reset()
	ps.heap.Push(r, 0)
	for ps.heap.Len() > 0 {
		u, d := ps.heap.Pop()
		covered := false
		for _, e := range sideStore.Snapshot(u) {
			if t := ps.tmp[e.Hub]; t != graph.Inf && graph.AddDist(t, e.D) <= d {
				covered = true
				break
			}
		}
		if covered {
			continue
		}
		sideStore.Append(u, r, d)
		var ns []graph.Vertex
		var ws []graph.Dist
		if forward {
			ns, ws = ps.g.Out(u)
		} else {
			ns, ws = ps.g.In(u)
		}
		for i, v := range ns {
			nd := graph.AddDist(d, ws[i])
			if nd < ps.dist[v] {
				if ps.dist[v] == graph.Inf {
					ps.touched = append(ps.touched, v)
				}
				ps.dist[v] = nd
				ps.heap.Push(v, nd)
			}
		}
	}
	for _, t := range ps.touched {
		ps.dist[t] = graph.Inf
	}
	ps.touched = ps.touched[:0]
	for _, h := range ps.hubs {
		ps.tmp[h] = graph.Inf
	}
	ps.hubs = ps.hubs[:0]
}
