// Package directed extends pruned landmark labeling to directed weighted
// graphs — the generalization the original PLL paper supports and an
// obvious follow-on for ParaPLL (web graphs and road networks with
// one-way streets are directed; the paper evaluates their undirected
// projections). Every vertex keeps two label sets:
//
//	Lin(v)  = {(h, d(h→v))}   hubs that reach v
//	Lout(v) = {(h, d(v→h))}   hubs v reaches
//
// and QUERY(s,t) = min over h ∈ Lout(s) ∩ Lin(t) of d(s→h) + d(h→t).
// Indexing runs, per root r in the computing sequence, one forward
// pruned Dijkstra (filling Lin of reached vertices) and one backward
// pruned Dijkstra over reversed arcs (filling Lout), each pruned against
// the current directed 2-hop cover.
package directed

import (
	"sort"

	"parapll/internal/graph"
	"parapll/internal/vheap"
)

// Arc is one directed weighted edge.
type Arc struct {
	From, To graph.Vertex
	W        graph.Dist
}

// Digraph is an immutable directed weighted graph in dual-CSR form
// (forward and reverse adjacency).
type Digraph struct {
	outOff, inOff []int64
	outAdj, inAdj []graph.Vertex
	outW, inW     []graph.Dist
}

// FromArcs builds a Digraph with n vertices. Self-loops are dropped and
// duplicate arcs keep their smallest weight. Panics on out-of-range
// endpoints or infinite weights.
func FromArcs(n int, arcs []Arc) *Digraph {
	norm := make([]Arc, 0, len(arcs))
	for _, a := range arcs {
		if a.From == a.To {
			continue
		}
		if int(a.From) < 0 || int(a.From) >= n || int(a.To) < 0 || int(a.To) >= n {
			panic("directed: arc endpoint out of range")
		}
		if a.W == graph.Inf {
			panic("directed: infinite arc weight")
		}
		norm = append(norm, a)
	}
	sort.Slice(norm, func(i, j int) bool {
		if norm[i].From != norm[j].From {
			return norm[i].From < norm[j].From
		}
		if norm[i].To != norm[j].To {
			return norm[i].To < norm[j].To
		}
		return norm[i].W < norm[j].W
	})
	dedup := norm[:0]
	for _, a := range norm {
		if len(dedup) > 0 && dedup[len(dedup)-1].From == a.From && dedup[len(dedup)-1].To == a.To {
			continue
		}
		dedup = append(dedup, a)
	}
	g := &Digraph{
		outOff: make([]int64, n+1), inOff: make([]int64, n+1),
		outAdj: make([]graph.Vertex, len(dedup)), inAdj: make([]graph.Vertex, len(dedup)),
		outW: make([]graph.Dist, len(dedup)), inW: make([]graph.Dist, len(dedup)),
	}
	outDeg := make([]int64, n)
	inDeg := make([]int64, n)
	for _, a := range dedup {
		outDeg[a.From]++
		inDeg[a.To]++
	}
	for i := 0; i < n; i++ {
		g.outOff[i+1] = g.outOff[i] + outDeg[i]
		g.inOff[i+1] = g.inOff[i] + inDeg[i]
	}
	outCur := make([]int64, n)
	inCur := make([]int64, n)
	copy(outCur, g.outOff[:n])
	copy(inCur, g.inOff[:n])
	for _, a := range dedup {
		g.outAdj[outCur[a.From]], g.outW[outCur[a.From]] = a.To, a.W
		outCur[a.From]++
		g.inAdj[inCur[a.To]], g.inW[inCur[a.To]] = a.From, a.W
		inCur[a.To]++
	}
	return g
}

// NumVertices returns n.
func (g *Digraph) NumVertices() int { return len(g.outOff) - 1 }

// NumArcs returns the number of directed arcs.
func (g *Digraph) NumArcs() int { return len(g.outAdj) }

// Out returns v's outgoing neighbors and weights (internal storage; do
// not modify).
func (g *Digraph) Out(v graph.Vertex) ([]graph.Vertex, []graph.Dist) {
	lo, hi := g.outOff[v], g.outOff[v+1]
	return g.outAdj[lo:hi], g.outW[lo:hi]
}

// In returns v's incoming neighbors and weights.
func (g *Digraph) In(v graph.Vertex) ([]graph.Vertex, []graph.Dist) {
	lo, hi := g.inOff[v], g.inOff[v+1]
	return g.inAdj[lo:hi], g.inW[lo:hi]
}

// Dijkstra computes forward single-source distances d(s→v) — the oracle
// the directed index is validated against.
func Dijkstra(g *Digraph, s graph.Vertex) []graph.Dist {
	n := g.NumVertices()
	dist := make([]graph.Dist, n)
	for i := range dist {
		dist[i] = graph.Inf
	}
	dist[s] = 0
	h := vheap.NewIndexed(n)
	h.Push(s, 0)
	for h.Len() > 0 {
		u, d := h.Pop()
		ns, ws := g.Out(u)
		for i, v := range ns {
			nd := graph.AddDist(d, ws[i])
			if nd < dist[v] {
				dist[v] = nd
				h.Push(v, nd)
			}
		}
	}
	return dist
}

// DegreeOrder returns vertices by (in+out)-degree descending, ties by
// id — the directed analogue of the paper's computing sequence.
func DegreeOrder(g *Digraph) []graph.Vertex {
	n := g.NumVertices()
	ord := make([]graph.Vertex, n)
	for i := range ord {
		ord[i] = graph.Vertex(i)
	}
	deg := func(v graph.Vertex) int64 {
		return (g.outOff[v+1] - g.outOff[v]) + (g.inOff[v+1] - g.inOff[v])
	}
	sort.SliceStable(ord, func(i, j int) bool {
		di, dj := deg(ord[i]), deg(ord[j])
		if di != dj {
			return di > dj
		}
		return ord[i] < ord[j]
	})
	return ord
}
