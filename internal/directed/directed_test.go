package directed

import (
	"math/rand"
	"testing"

	"parapll/internal/core"
	"parapll/internal/graph"
)

func randomDigraph(r *rand.Rand, n, m int) *Digraph {
	arcs := make([]Arc, 0, m+n)
	// A random out-tree keeps most vertices reachable from vertex 0.
	for v := 1; v < n; v++ {
		arcs = append(arcs, Arc{From: graph.Vertex(r.Intn(v)), To: graph.Vertex(v), W: graph.Dist(1 + r.Intn(20))})
	}
	for i := 0; i < m; i++ {
		arcs = append(arcs, Arc{
			From: graph.Vertex(r.Intn(n)), To: graph.Vertex(r.Intn(n)), W: graph.Dist(1 + r.Intn(20)),
		})
	}
	return FromArcs(n, arcs)
}

func TestFromArcsNormalization(t *testing.T) {
	g := FromArcs(3, []Arc{
		{From: 0, To: 1, W: 9},
		{From: 0, To: 1, W: 4}, // duplicate keeps min
		{From: 1, To: 1, W: 2}, // self loop dropped
		{From: 1, To: 0, W: 7}, // reverse is a distinct arc
	})
	if g.NumArcs() != 2 {
		t.Fatalf("arcs = %d, want 2", g.NumArcs())
	}
	ns, ws := g.Out(0)
	if len(ns) != 1 || ns[0] != 1 || ws[0] != 4 {
		t.Fatalf("out(0) = %v %v", ns, ws)
	}
	ns, ws = g.In(0)
	if len(ns) != 1 || ns[0] != 1 || ws[0] != 7 {
		t.Fatalf("in(0) = %v %v", ns, ws)
	}
}

func TestFromArcsPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"range": func() { FromArcs(2, []Arc{{From: 0, To: 5, W: 1}}) },
		"inf":   func() { FromArcs(2, []Arc{{From: 0, To: 1, W: graph.Inf}}) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		})
	}
}

func TestDirectedIndexExact(t *testing.T) {
	r := rand.New(rand.NewSource(1000))
	for trial := 0; trial < 10; trial++ {
		n := 10 + r.Intn(40)
		g := randomDigraph(r, n, 4*n)
		x := Build(g, Options{})
		for s := graph.Vertex(0); int(s) < n; s++ {
			want := Dijkstra(g, s)
			for u := graph.Vertex(0); int(u) < n; u++ {
				if got := x.Query(s, u); got != want[u] {
					t.Fatalf("trial %d: query(%d->%d) = %d, want %d", trial, s, u, got, want[u])
				}
			}
		}
	}
}

func TestDirectedAsymmetry(t *testing.T) {
	// One-way chain: 0 -> 1 -> 2; backwards unreachable.
	g := FromArcs(3, []Arc{{From: 0, To: 1, W: 4}, {From: 1, To: 2, W: 5}})
	x := Build(g, Options{})
	if d := x.Query(0, 2); d != 9 {
		t.Fatalf("forward = %d, want 9", d)
	}
	if d := x.Query(2, 0); d != graph.Inf {
		t.Fatalf("backward = %d, want Inf", d)
	}
	if d := x.Query(1, 1); d != 0 {
		t.Fatalf("self = %d", d)
	}
}

func TestDirectedCycleShortcut(t *testing.T) {
	// Directed cycle with a heavy shortcut: query must route the right way.
	g := FromArcs(4, []Arc{
		{From: 0, To: 1, W: 1}, {From: 1, To: 2, W: 1},
		{From: 2, To: 3, W: 1}, {From: 3, To: 0, W: 1},
		{From: 0, To: 3, W: 10},
	})
	x := Build(g, Options{})
	if d := x.Query(0, 3); d != 3 {
		t.Fatalf("d(0->3) = %d, want 3 (around the cycle)", d)
	}
	if d := x.Query(3, 0); d != 1 {
		t.Fatalf("d(3->0) = %d, want 1", d)
	}
}

func TestDirectedOrderValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Build(FromArcs(3, nil), Options{Order: []graph.Vertex{0}})
}

func TestDirectedDegreeOrder(t *testing.T) {
	// Star with arcs into vertex 0: highest total degree first.
	g := FromArcs(5, []Arc{
		{From: 1, To: 0, W: 1}, {From: 2, To: 0, W: 1},
		{From: 3, To: 0, W: 1}, {From: 0, To: 4, W: 1},
	})
	ord := DegreeOrder(g)
	if ord[0] != 0 {
		t.Fatalf("order[0] = %d, want 0", ord[0])
	}
	seen := make([]bool, 5)
	for _, v := range ord {
		if seen[v] {
			t.Fatal("duplicate in order")
		}
		seen[v] = true
	}
}

func TestDirectedStats(t *testing.T) {
	g := randomDigraph(rand.New(rand.NewSource(1001)), 30, 90)
	x := Build(g, Options{})
	if x.NumEntries() < int64(g.NumVertices()) {
		t.Fatalf("entries = %d, want >= n", x.NumEntries())
	}
	if x.AvgLabelSize() <= 0 {
		t.Fatal("avg label size not positive")
	}
	empty := Build(FromArcs(0, nil), Options{})
	if empty.AvgLabelSize() != 0 {
		t.Fatal("empty index stats wrong")
	}
}

// TestBuildParallelExact: the parallel directed build answers every
// ordered pair exactly, for both policies and several thread counts.
func TestBuildParallelExact(t *testing.T) {
	r := rand.New(rand.NewSource(1003))
	for trial := 0; trial < 5; trial++ {
		n := 10 + r.Intn(40)
		g := randomDigraph(r, n, 4*n)
		for _, policy := range []core.Policy{core.Static, core.Dynamic} {
			for _, threads := range []int{1, 3, 8} {
				x := BuildParallel(g, ParallelOptions{Threads: threads, Policy: policy})
				for s := graph.Vertex(0); int(s) < n; s++ {
					want := Dijkstra(g, s)
					for u := graph.Vertex(0); int(u) < n; u++ {
						if got := x.Query(s, u); got != want[u] {
							t.Fatalf("trial %d %v/%d: query(%d->%d) = %d, want %d",
								trial, policy, threads, s, u, got, want[u])
						}
					}
				}
			}
		}
	}
}

func TestBuildParallelSingleThreadMatchesSerial(t *testing.T) {
	g := randomDigraph(rand.New(rand.NewSource(1004)), 40, 160)
	serial := Build(g, Options{})
	par := BuildParallel(g, ParallelOptions{Threads: 1})
	if serial.NumEntries() != par.NumEntries() {
		t.Fatalf("1-thread parallel entries %d != serial %d", par.NumEntries(), serial.NumEntries())
	}
}

func TestBuildParallelOrderValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BuildParallel(FromArcs(3, nil), ParallelOptions{Order: []graph.Vertex{0}})
}

func TestDirectedPruningShrinksIndex(t *testing.T) {
	// Sanity: the index is much smaller than n^2 entries on a graph with
	// a strong hub (all shortest paths pass vertex 0).
	n := 200
	r := rand.New(rand.NewSource(1002))
	arcs := make([]Arc, 0, 2*n)
	for v := 1; v < n; v++ {
		arcs = append(arcs, Arc{From: 0, To: graph.Vertex(v), W: graph.Dist(1 + r.Intn(4))})
		arcs = append(arcs, Arc{From: graph.Vertex(v), To: 0, W: graph.Dist(1 + r.Intn(4))})
	}
	g := FromArcs(n, arcs)
	x := Build(g, Options{})
	if x.NumEntries() > int64(6*n) {
		t.Fatalf("hub graph index has %d entries, expected ~4n", x.NumEntries())
	}
}
