package order

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"parapll/internal/graph"
	"parapll/internal/sssp"
)

func TestBetweennessPath(t *testing.T) {
	// Path 0-1-2-3-4: analytic betweenness of vertex i is
	// (#pairs separated by i) = i * (n-1-i) for internal vertices.
	n := 5
	edges := make([]graph.Edge, n-1)
	for i := range edges {
		edges[i] = graph.Edge{U: graph.Vertex(i), V: graph.Vertex(i + 1), W: 2}
	}
	g := graph.FromEdges(n, edges)
	bc := BetweennessScores(g)
	want := []float64{0, 3, 4, 3, 0}
	for i := range want {
		if math.Abs(bc[i]-want[i]) > 1e-9 {
			t.Fatalf("bc[%d] = %v, want %v (all: %v)", i, bc[i], want[i], bc)
		}
	}
}

func TestBetweennessStar(t *testing.T) {
	// Star: center carries all C(n-1,2) pairs, leaves none.
	g := graph.FromEdges(6, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 0, V: 2, W: 1}, {U: 0, V: 3, W: 1}, {U: 0, V: 4, W: 1}, {U: 0, V: 5, W: 1},
	})
	bc := BetweennessScores(g)
	if math.Abs(bc[0]-10) > 1e-9 { // C(5,2)
		t.Fatalf("center bc = %v, want 10", bc[0])
	}
	for i := 1; i < 6; i++ {
		if bc[i] != 0 {
			t.Fatalf("leaf %d bc = %v, want 0", i, bc[i])
		}
	}
}

func TestBetweennessEqualPathSplitting(t *testing.T) {
	// Diamond 0-{1,2}-3 with equal weights: the two middle vertices each
	// carry half of the single (0,3) pair.
	g := graph.FromEdges(4, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 0, V: 2, W: 1}, {U: 1, V: 3, W: 1}, {U: 2, V: 3, W: 1},
	})
	bc := BetweennessScores(g)
	if math.Abs(bc[1]-0.5) > 1e-9 || math.Abs(bc[2]-0.5) > 1e-9 {
		t.Fatalf("diamond middles = %v, want 0.5 each", bc)
	}
}

// bruteBetweenness counts shortest-path dependencies by enumerating all
// shortest paths via Floyd–Warshall path counting.
func bruteBetweenness(g *graph.Graph) []float64 {
	n := g.NumVertices()
	d := sssp.FloydWarshall(g)
	// count[s][t] = number of shortest s-t paths.
	count := make([][]float64, n)
	for s := 0; s < n; s++ {
		count[s] = make([]float64, n)
	}
	// DP over vertices sorted by distance from s.
	for s := 0; s < n; s++ {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return d[s][idx[a]] < d[s][idx[b]] })
		count[s][s] = 1
		for _, v := range idx {
			if v == s || d[s][v] == graph.Inf {
				continue
			}
			ns, ws := g.Neighbors(graph.Vertex(v))
			for i, u := range ns {
				if d[s][u] != graph.Inf && graph.AddDist(d[s][u], ws[i]) == d[s][v] {
					count[s][v] += count[s][int(u)]
				}
			}
		}
	}
	bc := make([]float64, n)
	for s := 0; s < n; s++ {
		for t := s + 1; t < n; t++ {
			if d[s][t] == graph.Inf {
				continue
			}
			for v := 0; v < n; v++ {
				if v == s || v == t || d[s][v] == graph.Inf || d[v][t] == graph.Inf {
					continue
				}
				if graph.AddDist(d[s][v], d[v][t]) == d[s][t] {
					bc[v] += count[s][v] * count[v][t] / count[s][t]
				}
			}
		}
	}
	return bc
}

func TestBetweennessAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(600))
	for trial := 0; trial < 8; trial++ {
		n := 6 + r.Intn(12)
		edges := make([]graph.Edge, 0, 3*n)
		for v := 1; v < n; v++ {
			edges = append(edges, graph.Edge{U: graph.Vertex(r.Intn(v)), V: graph.Vertex(v), W: graph.Dist(1 + r.Intn(4))})
		}
		for i := 0; i < 2*n; i++ {
			edges = append(edges, graph.Edge{U: graph.Vertex(r.Intn(n)), V: graph.Vertex(r.Intn(n)), W: graph.Dist(1 + r.Intn(4))})
		}
		g := graph.FromEdges(n, edges)
		fast := BetweennessScores(g)
		slow := bruteBetweenness(g)
		for v := range fast {
			if math.Abs(fast[v]-slow[v]) > 1e-6 {
				t.Fatalf("trial %d vertex %d: brandes %v, brute %v", trial, v, fast[v], slow[v])
			}
		}
	}
}

func TestBetweennessRejectsZeroWeights(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero-weight edge")
		}
	}()
	BetweennessScores(graph.FromEdges(2, []graph.Edge{{U: 0, V: 1, W: 0}}))
}

func TestBetweennessOrderPermutation(t *testing.T) {
	g := star(20)
	ord := Betweenness(g)
	if !Validate(g, ord) {
		t.Fatal("betweenness order not a permutation")
	}
	if ord[0] != 0 {
		t.Fatalf("star center should rank first, got %v", ord[:3])
	}
}

// TestPsiSampleCorrelatesWithBetweenness validates the sampling
// estimator against the exact oracle: on a structured graph the top
// exact-betweenness vertex must appear near the top of the ψ order.
func TestPsiSampleCorrelatesWithBetweenness(t *testing.T) {
	// Two stars joined by a bridge: centers and bridge dominate.
	var edges []graph.Edge
	for i := graph.Vertex(1); i < 10; i++ {
		edges = append(edges, graph.Edge{U: 0, V: i, W: 1})
	}
	for i := graph.Vertex(11); i < 20; i++ {
		edges = append(edges, graph.Edge{U: 10, V: i, W: 1})
	}
	edges = append(edges, graph.Edge{U: 0, V: 10, W: 1})
	g := graph.FromEdges(20, edges)
	exact := Betweenness(g)
	sampled := PsiSample(g, 16, 9)
	exactTop := map[graph.Vertex]bool{exact[0]: true, exact[1]: true}
	if !exactTop[sampled[0]] {
		t.Fatalf("ψ-sample top %d not among exact top-2 %v", sampled[0], exact[:2])
	}
}
