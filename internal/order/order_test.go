package order

import (
	"reflect"
	"runtime"
	"testing"

	"parapll/internal/gen"
	"parapll/internal/graph"
)

func star(n int) *graph.Graph {
	edges := make([]graph.Edge, n-1)
	for i := range edges {
		edges[i] = graph.Edge{U: 0, V: graph.Vertex(i + 1), W: 1}
	}
	return graph.FromEdges(n, edges)
}

func TestDegreeOrder(t *testing.T) {
	g := star(8)
	ord := Degree(g)
	if ord[0] != 0 {
		t.Fatalf("hub not first: %v", ord)
	}
	if !Validate(g, ord) {
		t.Fatal("degree order not a permutation")
	}
}

func TestRandomOrder(t *testing.T) {
	g := star(50)
	a := Random(g, 1)
	b := Random(g, 1)
	c := Random(g, 2)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed differs")
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds identical (vanishingly unlikely)")
	}
	if !Validate(g, a) || !Validate(g, c) {
		t.Fatal("random order not a permutation")
	}
}

func TestPsiSampleStar(t *testing.T) {
	// Every shortest path in a star passes through the hub.
	g := star(20)
	ord := PsiSample(g, 8, 3)
	if ord[0] != 0 {
		t.Fatalf("ψ order should put the hub first, got %v", ord[:3])
	}
	if !Validate(g, ord) {
		t.Fatal("psi order not a permutation")
	}
}

func TestPsiSampleBridge(t *testing.T) {
	// Two cliques joined by a bridge vertex: the bridge carries all
	// cross-clique shortest paths even though its degree (2) is minimal.
	var edges []graph.Edge
	for i := graph.Vertex(0); i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			edges = append(edges, graph.Edge{U: i, V: j, W: 1})
		}
	}
	for i := graph.Vertex(6); i < 11; i++ {
		for j := i + 1; j < 11; j++ {
			edges = append(edges, graph.Edge{U: i, V: j, W: 1})
		}
	}
	edges = append(edges, graph.Edge{U: 4, V: 5, W: 1}, graph.Edge{U: 5, V: 6, W: 1})
	g := graph.FromEdges(11, edges)
	ord := PsiSample(g, 16, 4)
	// The bridge (5) or its endpoints (4, 6) must rank in the top three.
	top := map[graph.Vertex]bool{ord[0]: true, ord[1]: true, ord[2]: true}
	if !top[5] && !top[4] && !top[6] {
		t.Fatalf("bridge region not ranked high: top3 = %v", ord[:3])
	}
}

func TestPsiSampleDeterministic(t *testing.T) {
	g := star(30)
	if !reflect.DeepEqual(PsiSample(g, 4, 9), PsiSample(g, 4, 9)) {
		t.Fatal("PsiSample not deterministic for fixed seed")
	}
}

func TestPsiSamplePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for samples < 1")
		}
	}()
	PsiSample(star(4), 0, 1)
}

func TestValidate(t *testing.T) {
	g := star(4)
	if Validate(g, []graph.Vertex{0, 1, 2}) {
		t.Error("short order validated")
	}
	if Validate(g, []graph.Vertex{0, 1, 2, 2}) {
		t.Error("duplicate order validated")
	}
	if Validate(g, []graph.Vertex{0, 1, 2, 9}) {
		t.Error("out-of-range order validated")
	}
	if !Validate(g, []graph.Vertex{3, 2, 1, 0}) {
		t.Error("valid order rejected")
	}
}

func TestOrdersOnGeneratedGraphs(t *testing.T) {
	for _, name := range []string{"Gnutella", "RI-USA"} {
		rec, err := gen.FindRecipe(name)
		if err != nil {
			t.Fatal(err)
		}
		g := rec.Generate(0.01)
		for policy, ord := range map[string][]graph.Vertex{
			"degree": Degree(g),
			"random": Random(g, 5),
			"psi":    PsiSample(g, 4, 5),
		} {
			if !Validate(g, ord) {
				t.Errorf("%s/%s: not a permutation", name, policy)
			}
		}
	}
}

// TestPsiSampleParallelMatchesSerial pins the worker pool's contract:
// the estimate is a pure function of (g, samples, seed), so a build
// with one worker and a build with many must agree exactly.
func TestPsiSampleParallelMatchesSerial(t *testing.T) {
	rec, err := gen.FindRecipe("Gnutella")
	if err != nil {
		t.Fatal(err)
	}
	g := rec.Generate(0.01)
	prev := runtime.GOMAXPROCS(1)
	serial := PsiSample(g, 16, 42)
	runtime.GOMAXPROCS(8)
	parallel := PsiSample(g, 16, 42)
	runtime.GOMAXPROCS(prev)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("PsiSample differs between 1 and 8 workers")
	}
}

// TestPsiSampleScratchReuse runs many samples through the same worker
// scratch (samples >> workers) so a missed reset between samples would
// corrupt the estimate relative to the known star answer.
func TestPsiSampleScratchReuse(t *testing.T) {
	g := star(40)
	ord := PsiSample(g, 50, 7)
	if ord[0] != 0 {
		t.Fatalf("star center ranked %v, want vertex 0 first", ord[0])
	}
	if !Validate(g, ord) {
		t.Fatal("not a permutation")
	}
}

func TestValidateMatchesCheckOrder(t *testing.T) {
	g := star(5)
	for _, c := range []struct {
		ord []graph.Vertex
		ok  bool
	}{
		{[]graph.Vertex{0, 1, 2, 3, 4}, true},
		{[]graph.Vertex{4, 3, 2, 1, 0}, true},
		{[]graph.Vertex{0, 1, 2, 3}, false},
		{[]graph.Vertex{0, 1, 2, 3, 3}, false},
		{[]graph.Vertex{0, 1, 2, 3, 5}, false},
	} {
		if got := Validate(g, c.ord); got != c.ok {
			t.Errorf("Validate(%v) = %v, want %v", c.ord, got, c.ok)
		}
		wantErr := graph.CheckOrder(c.ord, 5) == nil
		if wantErr != c.ok {
			t.Errorf("CheckOrder(%v) disagrees with expectation", c.ord)
		}
	}
}
