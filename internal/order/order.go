// Package order computes vertex computing sequences ("orders") for PLL
// indexing. The order determines pruning power: labels indexed early should
// cover as many shortest paths as possible (the paper's §4.2 and
// Proposition 2, where ψ(v) — the number of shortest paths through v —
// measures a vertex's pruning potential).
//
// Three policies are provided:
//
//   - Degree: the paper's choice — degree descending. Cheap and close to
//     optimal on power-law graphs where hubs carry most shortest paths.
//   - PsiSample: a sampled estimate of ψ(v) via shortest-path-tree subtree
//     sizes from random roots (after Potamias et al., the paper's [18]).
//     Better on road networks where degree is uninformative.
//   - Random: the control/ablation baseline, deliberately bad.
//
// A Strategy interface is intentionally avoided: an order is just a
// []graph.Vertex permutation, and policies are plain functions.
package order

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"parapll/internal/gen"
	"parapll/internal/graph"
	"parapll/internal/vheap"
)

// Degree returns vertices by degree descending, ties by id ascending —
// the paper's canonical sequence.
func Degree(g *graph.Graph) []graph.Vertex {
	return graph.DegreeOrder(g)
}

// Random returns a seeded random permutation of the vertices: the
// worst-case control for ordering ablations.
func Random(g *graph.Graph, seed uint64) []graph.Vertex {
	r := gen.NewRNG(seed)
	p := r.Perm(g.NumVertices())
	out := make([]graph.Vertex, len(p))
	for i, v := range p {
		out[i] = graph.Vertex(v)
	}
	return out
}

// PsiSample estimates ψ(v) — how many shortest paths pass through v — by
// running Dijkstra from `samples` random roots and accumulating, for every
// vertex, the size of its subtree in each shortest-path tree (the number
// of tree descendants whose root paths pass through it). Vertices are
// returned in descending estimated ψ. samples must be ≥ 1; larger samples
// sharpen the estimate at linear cost.
//
// Samples are independent, so they run on a GOMAXPROCS-wide worker pool,
// each worker owning reusable Dijkstra scratch (reset in time
// proportional to the search, not n) and a private ψ accumulator. The
// roots are all drawn before any worker starts and the per-sample
// contributions are summed, so the result is a pure function of
// (g, samples, seed) — identical to the serial computation regardless of
// how the pool schedules.
func PsiSample(g *graph.Graph, samples int, seed uint64) []graph.Vertex {
	n := g.NumVertices()
	if samples < 1 {
		panic("order: PsiSample needs samples >= 1")
	}
	r := gen.NewRNG(seed)
	var roots []graph.Vertex
	if n > 0 {
		roots = make([]graph.Vertex, samples)
		for s := range roots {
			roots[s] = graph.Vertex(r.Intn(n))
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(roots) {
		workers = len(roots)
	}
	if workers < 1 {
		workers = 1
	}
	perWorker := make([][]uint64, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			acc := make([]uint64, n)
			perWorker[w] = acc
			sc := newPsiScratch(n)
			for {
				s := int(next.Add(1)) - 1
				if s >= len(roots) {
					return
				}
				sc.accumulate(g, roots[s], acc)
			}
		}(w)
	}
	wg.Wait()
	psi := make([]uint64, n)
	for _, acc := range perWorker {
		for i, x := range acc {
			psi[i] += x
		}
	}
	out := make([]graph.Vertex, n)
	for i := range out {
		out[i] = graph.Vertex(i)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if psi[out[i]] != psi[out[j]] {
			return psi[out[i]] > psi[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// psiScratch is one PsiSample worker's reusable Dijkstra state: the
// tentative-distance and shortest-path-tree arrays plus the settle-order
// buffer, all reset in time proportional to the search's reach.
type psiScratch struct {
	dist     []graph.Dist
	parent   []graph.Vertex
	size     []uint64
	orderBuf []graph.Vertex
	h        *vheap.Indexed
}

func newPsiScratch(n int) *psiScratch {
	sc := &psiScratch{
		dist:     make([]graph.Dist, n),
		parent:   make([]graph.Vertex, n),
		size:     make([]uint64, n),
		orderBuf: make([]graph.Vertex, 0, n),
		h:        vheap.NewIndexed(n),
	}
	for i := 0; i < n; i++ {
		sc.dist[i] = graph.Inf
		sc.parent[i] = -1
	}
	return sc
}

// accumulate runs one shortest-path tree from root and adds every
// vertex's subtree size into psi.
func (sc *psiScratch) accumulate(g *graph.Graph, root graph.Vertex, psi []uint64) {
	sc.dist[root] = 0
	sc.orderBuf = sc.orderBuf[:0]
	sc.h.Reset()
	sc.h.Push(root, 0)
	for sc.h.Len() > 0 {
		u, d := sc.h.Pop()
		sc.orderBuf = append(sc.orderBuf, u)
		ns, ws := g.Neighbors(u)
		for i, v := range ns {
			nd := graph.AddDist(d, ws[i])
			if nd < sc.dist[v] {
				sc.dist[v] = nd
				sc.parent[v] = u
				sc.h.Push(v, nd)
			}
		}
	}
	// Settle order is topological for the SP tree: walk it backwards
	// accumulating subtree sizes into each parent.
	for i := len(sc.orderBuf) - 1; i >= 0; i-- {
		v := sc.orderBuf[i]
		sc.size[v]++
		psi[v] += sc.size[v]
		if p := sc.parent[v]; p >= 0 {
			sc.size[p] += sc.size[v]
		}
	}
	// Every vertex with finite dist, a parent, or a nonzero size was
	// settled, hence on orderBuf: reset covers exactly the touched state.
	for _, v := range sc.orderBuf {
		sc.dist[v] = graph.Inf
		sc.parent[v] = -1
		sc.size[v] = 0
	}
}

// Validate checks that ord is a permutation of g's vertices, returning
// false otherwise. Indexing with a non-permutation would silently skip
// roots, so callers validate untrusted orders. It is graph.CheckOrder —
// the validator Build's panic path uses — behind package order's
// boolean convention.
func Validate(g *graph.Graph, ord []graph.Vertex) bool {
	return graph.CheckOrder(ord, g.NumVertices()) == nil
}
