// Package order computes vertex computing sequences ("orders") for PLL
// indexing. The order determines pruning power: labels indexed early should
// cover as many shortest paths as possible (the paper's §4.2 and
// Proposition 2, where ψ(v) — the number of shortest paths through v —
// measures a vertex's pruning potential).
//
// Three policies are provided:
//
//   - Degree: the paper's choice — degree descending. Cheap and close to
//     optimal on power-law graphs where hubs carry most shortest paths.
//   - PsiSample: a sampled estimate of ψ(v) via shortest-path-tree subtree
//     sizes from random roots (after Potamias et al., the paper's [18]).
//     Better on road networks where degree is uninformative.
//   - Random: the control/ablation baseline, deliberately bad.
//
// A Strategy interface is intentionally avoided: an order is just a
// []graph.Vertex permutation, and policies are plain functions.
package order

import (
	"sort"

	"parapll/internal/gen"
	"parapll/internal/graph"
	"parapll/internal/vheap"
)

// Degree returns vertices by degree descending, ties by id ascending —
// the paper's canonical sequence.
func Degree(g *graph.Graph) []graph.Vertex {
	return graph.DegreeOrder(g)
}

// Random returns a seeded random permutation of the vertices: the
// worst-case control for ordering ablations.
func Random(g *graph.Graph, seed uint64) []graph.Vertex {
	r := gen.NewRNG(seed)
	p := r.Perm(g.NumVertices())
	out := make([]graph.Vertex, len(p))
	for i, v := range p {
		out[i] = graph.Vertex(v)
	}
	return out
}

// PsiSample estimates ψ(v) — how many shortest paths pass through v — by
// running Dijkstra from `samples` random roots and accumulating, for every
// vertex, the size of its subtree in each shortest-path tree (the number
// of tree descendants whose root paths pass through it). Vertices are
// returned in descending estimated ψ. samples must be ≥ 1; larger samples
// sharpen the estimate at linear cost.
func PsiSample(g *graph.Graph, samples int, seed uint64) []graph.Vertex {
	n := g.NumVertices()
	if samples < 1 {
		panic("order: PsiSample needs samples >= 1")
	}
	psi := make([]uint64, n)
	r := gen.NewRNG(seed)
	dist := make([]graph.Dist, n)
	parent := make([]graph.Vertex, n)
	orderBuf := make([]graph.Vertex, 0, n)
	h := vheap.NewIndexed(n)
	for s := 0; s < samples && n > 0; s++ {
		root := graph.Vertex(r.Intn(n))
		for i := range dist {
			dist[i] = graph.Inf
			parent[i] = -1
		}
		dist[root] = 0
		orderBuf = orderBuf[:0]
		h.Reset()
		h.Push(root, 0)
		for h.Len() > 0 {
			u, d := h.Pop()
			orderBuf = append(orderBuf, u)
			ns, ws := g.Neighbors(u)
			for i, v := range ns {
				nd := graph.AddDist(d, ws[i])
				if nd < dist[v] {
					dist[v] = nd
					parent[v] = u
					h.Push(v, nd)
				}
			}
		}
		// Settle order is topological for the SP tree: walk it backwards
		// accumulating subtree sizes into each parent.
		size := make([]uint64, n)
		for i := len(orderBuf) - 1; i >= 0; i-- {
			v := orderBuf[i]
			size[v]++
			psi[v] += size[v]
			if p := parent[v]; p >= 0 {
				size[p] += size[v]
			}
		}
	}
	out := make([]graph.Vertex, n)
	for i := range out {
		out[i] = graph.Vertex(i)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if psi[out[i]] != psi[out[j]] {
			return psi[out[i]] > psi[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// Validate checks that ord is a permutation of g's vertices, returning
// false otherwise. Indexing with a non-permutation would silently skip
// roots, so callers validate untrusted orders.
func Validate(g *graph.Graph, ord []graph.Vertex) bool {
	n := g.NumVertices()
	if len(ord) != n {
		return false
	}
	seen := make([]bool, n)
	for _, v := range ord {
		if int(v) < 0 || int(v) >= n || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}
