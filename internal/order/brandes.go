package order

import (
	"sort"

	"parapll/internal/graph"
	"parapll/internal/vheap"
)

// BetweennessScores computes exact weighted betweenness centrality with
// Brandes' algorithm (one Dijkstra plus one dependency-accumulation pass
// per source, O(nm + n² log n) total). Betweenness is the exact version
// of the ψ measure ParaPLL's Proposition 2 reasons about — the number of
// shortest paths through a vertex — so this serves both as the highest-
// quality (and most expensive) ordering policy and as the oracle that
// validates PsiSample. Only practical for small and mid-size graphs.
// Edge weights must be strictly positive: zero-weight edges create
// equal-distance shortest-path DAG edges whose settle order breaks the
// dependency accumulation, so they are rejected.
func BetweennessScores(g *graph.Graph) []float64 {
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		_, ws := g.Neighbors(graph.Vertex(v))
		for _, w := range ws {
			if w == 0 {
				panic("order: BetweennessScores requires strictly positive edge weights")
			}
		}
	}
	bc := make([]float64, n)
	dist := make([]graph.Dist, n)
	sigma := make([]float64, n) // number of shortest paths from s
	delta := make([]float64, n) // dependency accumulator
	preds := make([][]graph.Vertex, n)
	settled := make([]graph.Vertex, 0, n)
	h := vheap.NewIndexed(n)

	for s := 0; s < n; s++ {
		for i := 0; i < n; i++ {
			dist[i] = graph.Inf
			sigma[i] = 0
			delta[i] = 0
			preds[i] = preds[i][:0]
		}
		settled = settled[:0]
		dist[s] = 0
		sigma[s] = 1
		h.Reset()
		h.Push(graph.Vertex(s), 0)
		for h.Len() > 0 {
			u, d := h.Pop()
			settled = append(settled, u)
			ns, ws := g.Neighbors(u)
			for i, v := range ns {
				nd := graph.AddDist(d, ws[i])
				switch {
				case nd < dist[v]:
					dist[v] = nd
					h.Push(v, nd)
					sigma[v] = sigma[u]
					preds[v] = append(preds[v][:0], u)
				case nd == dist[v] && nd != graph.Inf:
					sigma[v] += sigma[u]
					preds[v] = append(preds[v], u)
				}
			}
		}
		// Accumulate dependencies in reverse settle order.
		for i := len(settled) - 1; i >= 0; i-- {
			w := settled[i]
			for _, p := range preds[w] {
				delta[p] += sigma[p] / sigma[w] * (1 + delta[w])
			}
			if int(w) != s {
				bc[w] += delta[w]
			}
		}
	}
	// Undirected: every path counted from both endpoints.
	for i := range bc {
		bc[i] /= 2
	}
	return bc
}

// Betweenness returns vertices by exact betweenness descending — the
// gold-standard computing sequence Proposition 2's ψ ordering describes.
// Ties break by smaller id.
func Betweenness(g *graph.Graph) []graph.Vertex {
	bc := BetweennessScores(g)
	out := make([]graph.Vertex, g.NumVertices())
	for i := range out {
		out[i] = graph.Vertex(i)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if bc[out[i]] != bc[out[j]] {
			return bc[out[i]] > bc[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}
