package parapll_test

import (
	"os"
	"os/exec"
	"testing"
	"time"
)

// TestExamplesRun smoke-tests every runnable example: each must build,
// run to completion within a generous timeout, and exit cleanly. This
// keeps the documentation honest as the API evolves.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs example binaries; skipped in -short mode")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 3 {
		t.Fatalf("expected at least 3 examples, found %d", len(entries))
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			cmd := exec.Command("go", "run", "./examples/"+name)
			done := make(chan error, 1)
			var out []byte
			go func() {
				var err error
				out, err = cmd.CombinedOutput()
				done <- err
			}()
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("example %s failed: %v\n%s", name, err, out)
				}
				if len(out) == 0 {
					t.Fatalf("example %s produced no output", name)
				}
			case <-time.After(10 * time.Minute):
				cmd.Process.Kill()
				t.Fatalf("example %s timed out", name)
			}
		})
	}
}
