package parapll_test

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"parapll"
)

func lineGraph() *parapll.Graph {
	return parapll.NewGraph(4, []parapll.Edge{
		{U: 0, V: 1, W: 3}, {U: 1, V: 2, W: 4}, {U: 2, V: 3, W: 5},
	})
}

func TestQuickstart(t *testing.T) {
	g := lineGraph()
	idx := parapll.Build(g, parapll.Options{})
	if d := idx.Query(0, 3); d != 12 {
		t.Fatalf("Query(0,3) = %d, want 12", d)
	}
	if d := idx.Query(2, 2); d != 0 {
		t.Fatalf("self query = %d", d)
	}
}

func TestBuildVariantsAgree(t *testing.T) {
	g, err := parapll.GenerateDataset("Gnutella", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	serial := parapll.BuildSerial(g, parapll.Options{})
	par := parapll.Build(g, parapll.Options{Threads: 4, Policy: parapll.Dynamic})
	clustered, err := parapll.RunLocalCluster(g, 3, parapll.ClusterOptions{
		Options: parapll.Options{Threads: 2}, SyncCount: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	n := g.NumVertices()
	for q := 0; q < 50; q++ {
		s := parapll.Vertex(r.Intn(n))
		u := parapll.Vertex(r.Intn(n))
		want := serial.Query(s, u)
		if got := par.Query(s, u); got != want {
			t.Fatalf("parallel Query(%d,%d) = %d, want %d", s, u, got, want)
		}
		if got := clustered.Query(s, u); got != want {
			t.Fatalf("cluster Query(%d,%d) = %d, want %d", s, u, got, want)
		}
		if got := parapll.QueryDirect(g, s, u); got != want {
			t.Fatalf("QueryDirect(%d,%d) = %d, want %d", s, u, got, want)
		}
	}
}

func TestOrderings(t *testing.T) {
	g, err := parapll.GenerateDataset("Wiki-Vote", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	want := parapll.Dijkstra(g, 0)
	for _, ord := range []parapll.Ordering{parapll.OrderDegree, parapll.OrderPsi, parapll.OrderRandom} {
		idx := parapll.Build(g, parapll.Options{Threads: 2, Order: ord, Seed: 7})
		for u := 0; u < g.NumVertices(); u += 13 {
			if got := idx.Query(0, parapll.Vertex(u)); got != want[u] {
				t.Fatalf("order %v: Query(0,%d) = %d, want %d", ord, u, got, want[u])
			}
		}
	}
}

func TestGraphAndIndexPersistence(t *testing.T) {
	dir := t.TempDir()
	g := lineGraph()
	gp := filepath.Join(dir, "g.bin")
	if err := parapll.SaveGraph(gp, g); err != nil {
		t.Fatal(err)
	}
	g2, err := parapll.LoadGraph(gp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g, g2) {
		t.Fatal("graph persistence round trip failed")
	}
	idx := parapll.BuildSerial(g, parapll.Options{})
	ip := filepath.Join(dir, "g.idx")
	if err := parapll.SaveIndex(ip, idx); err != nil {
		t.Fatal(err)
	}
	idx2, err := parapll.LoadIndex(ip)
	if err != nil {
		t.Fatal(err)
	}
	if !idx.Equal(idx2) {
		t.Fatal("index persistence round trip failed")
	}
	if d := idx2.Query(0, 3); d != 12 {
		t.Fatalf("loaded index Query = %d, want 12", d)
	}
}

func TestBuildPathIndex(t *testing.T) {
	g, err := parapll.GenerateDataset("DE-USA", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	pidx := parapll.BuildPathIndex(g, parapll.Options{Threads: 2, Policy: parapll.Dynamic})
	r := rand.New(rand.NewSource(2))
	n := g.NumVertices()
	for q := 0; q < 25; q++ {
		s := parapll.Vertex(r.Intn(n))
		u := parapll.Vertex(r.Intn(n))
		want := parapll.QueryDirect(g, s, u)
		path, d := pidx.Path(s, u)
		if d != want {
			t.Fatalf("Path dist (%d,%d) = %d, want %d", s, u, d, want)
		}
		if want == parapll.Inf {
			continue
		}
		var sum parapll.Dist
		for i := 1; i < len(path); i++ {
			w, ok := g.HasEdge(path[i-1], path[i])
			if !ok {
				t.Fatalf("path uses non-edge {%d,%d}", path[i-1], path[i])
			}
			sum += w
		}
		if sum != d {
			t.Fatalf("path weight %d != dist %d", sum, d)
		}
	}
}

func TestDatasetNames(t *testing.T) {
	names := parapll.DatasetNames()
	if len(names) != 11 || names[0] != "Wiki-Vote" || names[10] != "Euall" {
		t.Fatalf("DatasetNames = %v", names)
	}
	if _, err := parapll.GenerateDataset("nope", 0.5); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestNewKNN(t *testing.T) {
	g, err := parapll.GenerateDataset("Wiki-Vote", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	idx := parapll.Build(g, parapll.Options{Threads: 2, Policy: parapll.Dynamic})
	knn := parapll.NewKNN(idx)
	r := rand.New(rand.NewSource(4))
	for probe := 0; probe < 5; probe++ {
		s := parapll.Vertex(r.Intn(g.NumVertices()))
		res := knn.Query(s, 3)
		truth := parapll.Dijkstra(g, s)
		for i, e := range res {
			if truth[e.V] != e.D {
				t.Fatalf("kNN result %d: d(%d,%d)=%d, true %d", i, s, e.V, e.D, truth[e.V])
			}
		}
		// No non-result vertex may be strictly closer than the last result.
		if len(res) == 3 {
			inRes := map[parapll.Vertex]bool{res[0].V: true, res[1].V: true, res[2].V: true}
			for v, d := range truth {
				if parapll.Vertex(v) != s && !inRes[parapll.Vertex(v)] && d < res[2].D {
					t.Fatalf("vertex %d at distance %d closer than 3rd result %d", v, d, res[2].D)
				}
			}
		}
	}
}

func TestBuildUnweighted(t *testing.T) {
	g, err := parapll.GenerateDataset("Wiki-Vote", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	hop := parapll.BuildUnweighted(g, 4, parapll.Options{})
	r := rand.New(rand.NewSource(3))
	n := g.NumVertices()
	// Oracle: the weighted index over the same topology with unit weights
	// answers hop counts.
	edges := make([]parapll.Edge, 0)
	for v := parapll.Vertex(0); int(v) < n; v++ {
		ns, _ := g.Neighbors(v)
		for _, u := range ns {
			if v < u {
				edges = append(edges, parapll.Edge{U: v, V: u, W: 1})
			}
		}
	}
	ug := parapll.NewGraph(n, edges)
	want := parapll.Build(ug, parapll.Options{Threads: 2})
	for q := 0; q < 200; q++ {
		s := parapll.Vertex(r.Intn(n))
		u := parapll.Vertex(r.Intn(n))
		if got := hop.Query(s, u); got != want.Query(s, u) {
			t.Fatalf("hop(%d,%d) = %d, want %d", s, u, got, want.Query(s, u))
		}
	}
}

func TestInfUnreachable(t *testing.T) {
	g := parapll.NewGraph(3, []parapll.Edge{{U: 0, V: 1, W: 1}})
	idx := parapll.Build(g, parapll.Options{})
	if d := idx.Query(0, 2); d != parapll.Inf {
		t.Fatalf("unreachable = %d, want Inf", d)
	}
}

func TestConnectTCPSingleRank(t *testing.T) {
	comm, err := parapll.ConnectTCP(0, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	defer comm.Close()
	g := lineGraph()
	idx, err := parapll.BuildCluster(g, comm, parapll.ClusterOptions{SyncCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d := idx.Query(0, 3); d != 12 {
		t.Fatalf("cluster-of-one Query = %d", d)
	}
}

func TestBuildDynamic(t *testing.T) {
	g := parapll.NewGraph(4, []parapll.Edge{
		{U: 0, V: 1, W: 5}, {U: 1, V: 2, W: 5}, {U: 2, V: 3, W: 5},
	})
	dx := parapll.BuildDynamic(g, parapll.Options{})
	if d := dx.Query(0, 3); d != 15 {
		t.Fatalf("pre-insert d = %d, want 15", d)
	}
	if err := dx.InsertEdge(0, 3, 2); err != nil {
		t.Fatal(err)
	}
	if d := dx.Query(0, 3); d != 2 {
		t.Fatalf("post-insert d = %d, want 2", d)
	}
	if d := dx.Query(1, 3); d != 7 {
		t.Fatalf("post-insert d(1,3) = %d, want 7 (1-0-3)", d)
	}
}

func TestBuildDirected(t *testing.T) {
	g := parapll.NewDigraph(3, []parapll.Arc{
		{From: 0, To: 1, W: 3}, {From: 1, To: 2, W: 4},
	})
	x := parapll.BuildDirected(g)
	if d := x.Query(0, 2); d != 7 {
		t.Fatalf("d(0->2) = %d, want 7", d)
	}
	if d := x.Query(2, 0); d != parapll.Inf {
		t.Fatalf("d(2->0) = %d, want Inf", d)
	}
}

func TestFacadeTracer(t *testing.T) {
	g, err := parapll.GenerateDataset("Wiki-Vote", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	tr := parapll.NewTracer(0, 0)
	tr.Enable()
	idx := parapll.Build(g, parapll.Options{Threads: 2, Policy: parapll.Dynamic, Tracer: tr})
	if idx.NumEntries() == 0 {
		t.Fatal("empty index")
	}
	evs := tr.Events()
	if len(evs) == 0 {
		t.Fatal("facade tracer recorded nothing")
	}
	data, err := tr.Capture(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty capture")
	}
	// A merged single-capture file round-trips through MergeTraces.
	dir := t.TempDir()
	in := filepath.Join(dir, "a.json")
	out := filepath.Join(dir, "merged.json")
	if err := os.WriteFile(in, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := parapll.MergeTraces(out, []string{in}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatal(err)
	}
}
