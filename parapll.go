// Package parapll is a Go implementation of ParaPLL (Qiu et al., ICPP
// 2018): fast parallel shortest-path distance queries on large weighted
// graphs via Pruned Landmark Labeling.
//
// The workflow has two stages, as in the paper. The indexing stage builds
// a 2-hop-cover label index — serially (BuildSerial), in parallel on one
// machine (Build), or across a cluster of nodes connected by this
// repository's MPI-style transport (BuildCluster / RunLocalCluster). The
// querying stage answers exact point-to-point distances from the index in
// microseconds (Index.Query).
//
// Quick start:
//
//	g := parapll.NewGraph(4, []parapll.Edge{
//		{U: 0, V: 1, W: 3}, {U: 1, V: 2, W: 4}, {U: 2, V: 3, W: 5},
//	})
//	idx := parapll.Build(g, parapll.Options{})   // all cores, dynamic policy
//	dist := idx.Query(0, 3)                      // == 12
//
// The subpackages under internal/ hold the building blocks (graph
// substrate, label stores, task manager, MPI-style transports, dataset
// generators, experiment harness); this package is the supported surface.
package parapll

import (
	"runtime"

	"parapll/internal/cluster"
	"parapll/internal/core"
	"parapll/internal/directed"
	"parapll/internal/dynamic"
	"parapll/internal/fileio"
	"parapll/internal/gen"
	"parapll/internal/graph"
	"parapll/internal/knn"
	"parapll/internal/label"
	"parapll/internal/mpi"
	"parapll/internal/oracle"
	"parapll/internal/order"
	"parapll/internal/pathidx"
	"parapll/internal/pll"
	"parapll/internal/sssp"
	"parapll/internal/trace"
)

// Re-exported fundamental types. Vertex ids are dense int32s in [0,n);
// distances are uint32 with Inf marking "unreachable".
type (
	// Vertex identifies a vertex.
	Vertex = graph.Vertex
	// Dist is an edge weight or path distance.
	Dist = graph.Dist
	// Edge is one undirected weighted edge.
	Edge = graph.Edge
	// Graph is an immutable weighted undirected graph in CSR form.
	Graph = graph.Graph
	// Index is a finalized 2-hop-cover label index answering exact
	// distance queries.
	Index = label.Index
	// Explain is the cost-attribution record Index.QueryExplain returns:
	// the same answer as Query, plus where the merge's work went.
	Explain = label.Explain
	// PathIndex is a path-augmented index that also reconstructs the
	// shortest path itself (see BuildPathIndex).
	PathIndex = pathidx.Index
	// Comm is an MPI-style communicator for cluster indexing.
	Comm = mpi.Comm
)

// Inf is the distance of unreachable pairs.
const Inf = graph.Inf

// Policy selects the task assignment policy of the parallel indexer.
type Policy = core.Policy

// Assignment policies (paper §4.3, §4.4). Dynamic usually wins; Static is
// the simpler baseline.
const (
	Static  = core.Static
	Dynamic = core.Dynamic
)

// Ordering names a computing-sequence policy for the indexing stage.
type Ordering int

// Available vertex orderings. OrderDegree is the paper's choice.
const (
	// OrderDegree indexes high-degree vertices first.
	OrderDegree Ordering = iota
	// OrderPsi estimates shortest-path centrality by sampling (better on
	// road networks, costlier to compute).
	OrderPsi
	// OrderRandom is the ablation control.
	OrderRandom
)

// Options configures index construction.
type Options struct {
	// Threads is the number of parallel workers; <= 0 means all cores.
	Threads int
	// Policy is Static or Dynamic (default Static, the zero value).
	Policy Policy
	// Order selects the computing sequence (default OrderDegree).
	Order Ordering
	// Seed feeds OrderPsi / OrderRandom.
	Seed uint64
	// Engine selects the build algorithm: EnginePerRoot (one pruned
	// Dijkstra per root — the paper's ParaPLL, and the default when
	// empty) or EngineBatched (vertex-centric: a batch of roots
	// propagated as one shared frontier). Honored by Build; the serial,
	// cluster, path and dynamic builders are pinned to per-root.
	Engine string
	// BatchSize is EngineBatched's roots-per-frontier, clamped to
	// [1, 64]; <= 0 picks the default (8). Ignored by EnginePerRoot.
	BatchSize int
	// Progress, when non-nil, receives live build counters that another
	// goroutine may sample with Snapshot while Build runs.
	Progress *BuildProgress
	// Tracer, when non-nil and enabled, records per-root build spans
	// (task acquire, Pruned Dijkstra, label append) for the Chrome
	// trace-event exporter; see NewTracer. Honored by Build and
	// BuildCluster; ignored by the serial baseline.
	Tracer *Tracer
}

// BuildProgress holds live counters of a running Build; see
// Options.Progress. Its Snapshot method is safe to call concurrently
// with the build.
type BuildProgress = core.Progress

// BuildProgressSnapshot is a point-in-time copy of a BuildProgress,
// with Rate and ETA helpers for progress reporting.
type BuildProgressSnapshot = core.ProgressSnapshot

// Engine names accepted by Options.Engine ("" means per-root).
const (
	EnginePerRoot = core.EnginePerRoot
	EngineBatched = core.EngineBatched
)

// Tracer is a low-overhead span/event recorder. Create one with
// NewTracer, pass it via Options.Tracer (or Server-side sampling), and
// export the recorded timeline as Chrome trace-event JSON with
// WriteJSON — the format chrome://tracing and https://ui.perfetto.dev
// open directly. A disabled tracer costs one atomic check per
// instrumentation site.
type Tracer = trace.Tracer

// NewTracer creates a tracer for process lane pid (the cluster rank, or
// 0 on one machine) whose per-thread ring buffers hold capacity events
// each (0 picks a default). The tracer starts disabled; call Enable.
func NewTracer(pid, capacity int) *Tracer { return trace.New(pid, capacity) }

// MergeTraces merges per-rank trace files (written by parapll-node
// -trace) into one cross-rank timeline at outPath, aligning each
// capture's wall-clock epoch.
func MergeTraces(outPath string, inPaths []string) error {
	return trace.MergeFiles(outPath, inPaths)
}

func computeOrder(g *Graph, o Ordering, seed uint64) []Vertex {
	switch o {
	case OrderPsi:
		samples := 8
		if g.NumVertices() < 8 {
			samples = 1
		}
		return order.PsiSample(g, samples, seed)
	case OrderRandom:
		return order.Random(g, seed)
	default:
		return order.Degree(g)
	}
}

// NewGraph builds a graph with n vertices from an undirected edge list.
// Self-loops are dropped and duplicate edges keep their smallest weight.
func NewGraph(n int, edges []Edge) *Graph { return graph.FromEdges(n, edges) }

// Build constructs the index in parallel on this machine (the paper's
// intra-node ParaPLL). It panics on an unknown Options.Engine name,
// matching the package's treatment of invalid orders.
func Build(g *Graph, opt Options) *Index {
	eng, err := core.EngineByName(opt.Engine, opt.BatchSize)
	if err != nil {
		panic("parapll: " + err.Error())
	}
	return core.Build(g, core.Options{
		Threads:  opt.Threads,
		Policy:   opt.Policy,
		Order:    computeOrder(g, opt.Order, opt.Seed),
		Progress: opt.Progress,
		Tracer:   opt.Tracer,
		Engine:   eng,
	})
}

// BuildSerial constructs the index with the serial weighted PLL — the
// baseline ParaPLL's speedups are measured against.
func BuildSerial(g *Graph, opt Options) *Index {
	return pll.Build(g, pll.Options{Order: computeOrder(g, opt.Order, opt.Seed)})
}

// KNNIndex answers k-nearest-neighbor queries ("the k closest vertices
// to s") from an inverted 2-hop index; see NewKNN.
type KNNIndex = knn.Index

// KNNResult is one k-NN answer entry.
type KNNResult = knn.Result

// NewKNN inverts a built index for k-nearest-neighbor queries. The
// inverted structure costs as much memory as the index itself;
// KNNIndex.Query(s, k) then returns the k closest vertices with exact
// distances in output-sensitive time.
func NewKNN(x *Index) *KNNIndex { return knn.New(x) }

// HopIndex is an unweighted (hop-count) index with a bit-parallel first
// layer — the original PLL of Akiba et al. that ParaPLL generalizes.
type HopIndex = pll.BPIndex

// BuildUnweighted constructs a hop-count index, ignoring edge weights:
// nBPRoots bit-parallel BFS roots (0 disables the optimization; 16 is a
// good default on power-law graphs) followed by pruned BFSes. Queries
// return the number of edges on a shortest path.
func BuildUnweighted(g *Graph, nBPRoots int, opt Options) *HopIndex {
	return pll.BuildUnweightedBP(g, nBPRoots, pll.Options{Order: computeOrder(g, opt.Order, opt.Seed)})
}

// BuildPathIndex constructs a path-augmented index: like Build, but each
// label also records a predecessor, so PathIndex.Path(s, t) returns the
// actual shortest-path vertex sequence, not just its length. Costs ~50%
// more label memory than Build.
func BuildPathIndex(g *Graph, opt Options) *PathIndex {
	return pathidx.Build(g, pathidx.Options{
		Threads: opt.Threads,
		Policy:  opt.Policy,
		Order:   computeOrder(g, opt.Order, opt.Seed),
	})
}

// Digraph is an immutable directed weighted graph; Arc is one directed
// edge. See BuildDirected.
type (
	Digraph = directed.Digraph
	Arc     = directed.Arc
	// DirectedIndex answers exact directed distance queries d(s→t).
	DirectedIndex = directed.Index
)

// NewDigraph builds a directed graph from an arc list (self-loops
// dropped, duplicate arcs keep the smallest weight).
func NewDigraph(n int, arcs []Arc) *Digraph { return directed.FromArcs(n, arcs) }

// BuildDirected indexes a directed graph with forward/backward pruned
// landmark labels. Queries are one-directional: Query(s,t) = d(s→t).
func BuildDirected(g *Digraph) *DirectedIndex {
	return directed.Build(g, directed.Options{})
}

// DynamicIndex is a mutable index that stays exact under edge
// insertions (InsertEdge) without rebuilding; see BuildDynamic.
type DynamicIndex = dynamic.Index

// BuildDynamic constructs a mutable index for a growing graph: queries
// as usual, plus InsertEdge(u, v, w) repairs the labels incrementally.
// Deletions are not supported.
func BuildDynamic(g *Graph, opt Options) *DynamicIndex {
	return dynamic.Build(g, pll.Options{Order: computeOrder(g, opt.Order, opt.Seed)})
}

// ClusterOptions configures distributed indexing.
type ClusterOptions struct {
	// Options configures each node's intra-node workers.
	Options
	// SyncCount is how many label synchronizations happen across the run
	// (the paper's c; 1 — sync once at the end — is fastest).
	SyncCount int
	// Overlap overlaps each synchronization's exchange and merge with
	// the next segment's computation. Queries stay exact (late labels
	// only weaken pruning), at the cost of somewhat more redundant
	// labels. Every rank must pass the same value.
	Overlap bool
}

// BuildCluster runs this process's share of a distributed indexing job.
// Every rank of comm must call it with the same graph and options; every
// rank returns the identical cluster-wide index.
func BuildCluster(g *Graph, comm Comm, opt ClusterOptions) (*Index, error) {
	idx, _, err := cluster.Build(g, cluster.Options{
		Comm:      comm,
		Threads:   opt.Threads,
		Policy:    opt.Policy,
		Order:     computeOrder(g, opt.Order, opt.Seed),
		SyncCount: opt.SyncCount,
		Overlap:   opt.Overlap,
		Tracer:    opt.Tracer,
	})
	return idx, err
}

// RunLocalCluster simulates a cluster of the given number of nodes inside
// this process (channel transport) and returns the cluster-wide index.
// Useful for exercising the distributed code path without deployment.
func RunLocalCluster(g *Graph, nodes int, opt ClusterOptions) (*Index, error) {
	if opt.Threads <= 0 {
		// Split the machine's cores across the simulated nodes.
		opt.Threads = (runtime.GOMAXPROCS(0) + nodes - 1) / nodes
	}
	idxs, _, err := cluster.RunLocal(g, nodes, cluster.Options{
		Threads:   opt.Threads,
		Policy:    opt.Policy,
		Order:     computeOrder(g, opt.Order, opt.Seed),
		SyncCount: opt.SyncCount,
		Overlap:   opt.Overlap,
	})
	if err != nil {
		return nil, err
	}
	return idxs[0], nil
}

// ConnectTCP joins a real multi-process cluster: rank 0 listens on
// rootAddr, every rank calls ConnectTCP with the same rootAddr and its
// own rank. See cmd/parapll-node for a ready-made launcher.
func ConnectTCP(rank, size int, rootAddr string) (Comm, error) {
	return mpi.ConnectTCP(rank, size, rootAddr, "")
}

// Dijkstra returns single-source distances — the index-free baseline and
// the ground truth the index is validated against.
func Dijkstra(g *Graph, s Vertex) []Dist { return sssp.Dijkstra(g, s) }

// QueryDirect answers one point-to-point query without an index (Dijkstra
// with early exit) — the slow path the paper's introduction motivates
// replacing.
func QueryDirect(g *Graph, s, t Vertex) Dist { return sssp.Query(g, s, t) }

// SaveGraph / LoadGraph persist graphs (text edge list for ".txt"/
// ".edges", DIMACS for ".gr" on load, binary cache otherwise).
func SaveGraph(path string, g *Graph) error { return fileio.SaveGraph(path, g) }
func LoadGraph(path string) (*Graph, error) { return fileio.LoadGraph(path) }

// Oracle is the query surface every distance index in this repository
// serves — Index, DirectedIndex, DynamicIndex and PathIndex all satisfy
// it. Program against Oracle to swap index kinds (or a heap-decoded
// index for a zero-copy mmap one) without touching call sites.
type Oracle = oracle.Oracle

// Index file formats accepted by SaveIndexAs. Loading never needs a
// format name: LoadIndex sniffs the file's magic bytes.
const (
	// FormatFixed is the checksummed fixed-width encoding (default).
	FormatFixed = label.FormatFixed
	// FormatCompact is the varint-delta encoding, 2–4x smaller on disk.
	FormatCompact = label.FormatCompact
	// FormatMmap is the section-aligned mmap-native encoding: LoadIndex
	// opens it zero-copy in O(1), with the label arrays aliasing the
	// page cache instead of being decoded onto the heap.
	FormatMmap = label.FormatMmap
)

// SaveIndex / LoadIndex persist finalized indexes. SaveIndex picks the
// format from the extension (".cidx" compact, ".midx" mmap-native,
// fixed otherwise); LoadIndex dispatches on file content, so any format
// loads from any path, and mmap-native files open zero-copy.
func SaveIndex(path string, x *Index) error { return fileio.SaveIndex(path, x) }
func LoadIndex(path string) (*Index, error) { return fileio.LoadIndex(path) }

// SaveIndexAs persists an index in an explicit format (FormatFixed,
// FormatCompact or FormatMmap), regardless of extension.
func SaveIndexAs(path string, x *Index, format string) error {
	return fileio.SaveIndexAs(path, x, format)
}

// GenerateDataset synthesizes one of the paper's Table-2 datasets by name
// (e.g. "Skitter") at the given scale in (0,1]. The generated graph
// matches the original's size and degree shape; see internal/gen for the
// substitution rationale.
func GenerateDataset(name string, scale float64) (*Graph, error) {
	rec, err := gen.FindRecipe(name)
	if err != nil {
		return nil, err
	}
	return rec.Generate(scale), nil
}

// DatasetNames lists the Table-2 dataset names in the paper's order.
func DatasetNames() []string {
	out := make([]string, len(gen.Datasets))
	for i, rec := range gen.Datasets {
		out[i] = rec.Name
	}
	return out
}
