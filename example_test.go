package parapll_test

import (
	"fmt"

	"parapll"
)

// The two-stage workflow: index once, query forever.
func ExampleBuild() {
	g := parapll.NewGraph(4, []parapll.Edge{
		{U: 0, V: 1, W: 3}, {U: 1, V: 2, W: 4}, {U: 2, V: 3, W: 5},
	})
	idx := parapll.Build(g, parapll.Options{Policy: parapll.Dynamic, Threads: 2})
	fmt.Println(idx.Query(0, 3))
	fmt.Println(idx.Query(3, 0)) // undirected: symmetric
	// Output:
	// 12
	// 12
}

// Unreachable pairs answer parapll.Inf.
func ExampleIndex_Query() {
	g := parapll.NewGraph(3, []parapll.Edge{{U: 0, V: 1, W: 7}})
	idx := parapll.BuildSerial(g, parapll.Options{})
	fmt.Println(idx.Query(0, 1))
	fmt.Println(idx.Query(0, 2) == parapll.Inf)
	// Output:
	// 7
	// true
}

// Path reconstruction returns the route itself.
func ExampleBuildPathIndex() {
	g := parapll.NewGraph(4, []parapll.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 1}, {U: 0, V: 3, W: 10},
	})
	pidx := parapll.BuildPathIndex(g, parapll.Options{Threads: 1})
	path, dist := pidx.Path(0, 3)
	fmt.Println(path, dist)
	// Output:
	// [0 1 2 3] 3
}

// The index stays exact while the graph grows.
func ExampleBuildDynamic() {
	g := parapll.NewGraph(3, []parapll.Edge{{U: 0, V: 1, W: 5}, {U: 1, V: 2, W: 5}})
	dx := parapll.BuildDynamic(g, parapll.Options{})
	fmt.Println(dx.Query(0, 2))
	dx.InsertEdge(0, 2, 3)
	fmt.Println(dx.Query(0, 2))
	// Output:
	// 10
	// 3
}

// Directed graphs answer one-directional distances.
func ExampleBuildDirected() {
	g := parapll.NewDigraph(3, []parapll.Arc{
		{From: 0, To: 1, W: 2}, {From: 1, To: 2, W: 2},
	})
	x := parapll.BuildDirected(g)
	fmt.Println(x.Query(0, 2))
	fmt.Println(x.Query(2, 0) == parapll.Inf)
	// Output:
	// 4
	// true
}

// k-nearest-neighbor queries over the inverted index.
func ExampleNewKNN() {
	g := parapll.NewGraph(4, []parapll.Edge{
		{U: 0, V: 1, W: 1}, {U: 0, V: 2, W: 5}, {U: 0, V: 3, W: 9},
	})
	knn := parapll.NewKNN(parapll.Build(g, parapll.Options{Threads: 1}))
	for _, r := range knn.Query(0, 2) {
		fmt.Println(r.V, r.D)
	}
	// Output:
	// 1 1
	// 2 5
}
