// parapll-vet is the repo's multichecker: it runs the custom analyzer
// suite in internal/analysis over the module and exits non-zero if any
// finding survives suppression. It is wired into scripts/check.sh and
// CI, so a violated invariant is a red build, not a code-review note.
//
// Usage:
//
//	parapll-vet [-only mmapkeepalive,infguard] [-list] [packages...]
//
// Packages default to ./... relative to the current directory. Findings
// print one per line as file:line:col: analyzer: message. Suppress an
// individual finding with a comment on the offending line or the line
// above it:
//
//	//parapll:vet-ignore <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"parapll/internal/analysis"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	dir := flag.String("dir", ".", "module directory to analyze")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: parapll-vet [-only names] [-list] [packages...]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.All()
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "parapll-vet: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	pkgs, err := analysis.Load(*dir, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "parapll-vet:", err)
		os.Exit(2)
	}
	findings, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "parapll-vet:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "parapll-vet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
