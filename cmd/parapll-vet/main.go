// parapll-vet is the repo's multichecker: it runs the custom analyzer
// suite in internal/analysis over the module and exits non-zero if any
// finding survives suppression. It is wired into scripts/check.sh and
// CI, so a violated invariant is a red build, not a code-review note.
//
// Usage:
//
//	parapll-vet [-only mmapkeepalive,infguard] [-list] [-json] [-ignores] [packages...]
//
// Packages default to ./... relative to the current directory. Findings
// print one per line as file:line:col: analyzer: message; -json emits
// them as NDJSON objects instead (one per line, for CI annotation
// tooling). Suppress an individual finding with a comment on the
// offending line or the line above it:
//
//	//parapll:vet-ignore <analyzer> <reason>
//
// When the full suite runs (no -only), a directive that suppresses
// nothing is itself a finding: stale suppressions rot into lies about
// the code. -ignores prints the whole directive inventory with use
// counts and exits non-zero if any is stale.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"parapll/internal/analysis"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as NDJSON (one object per line)")
	ignores := flag.Bool("ignores", false, "print the vet-ignore inventory and exit non-zero on stale directives")
	dir := flag.String("dir", ".", "module directory to analyze")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: parapll-vet [-only names] [-list] [-json] [-ignores] [packages...]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.All()
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "parapll-vet: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	pkgs, err := analysis.Load(*dir, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "parapll-vet:", err)
		os.Exit(2)
	}
	findings, uses, err := analysis.RunAnalyzersVerbose(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "parapll-vet:", err)
		os.Exit(2)
	}
	stale := analysis.StaleIgnores(uses, analyzers)

	if *ignores {
		staleAt := make(map[string]bool, len(stale))
		for _, u := range stale {
			staleAt[u.Pos.String()] = true
		}
		for _, u := range uses {
			mark := ""
			if staleAt[u.Pos.String()] {
				mark = "  STALE"
			}
			fmt.Printf("%s: %s %q suppressed %d finding(s)%s\n", u.Pos, u.Analyzer, u.Reason, u.Uses, mark)
		}
		if len(stale) > 0 {
			fmt.Fprintf(os.Stderr, "parapll-vet: %d stale vet-ignore directive(s)\n", len(stale))
			os.Exit(1)
		}
		return
	}

	// With the full suite (no -only), a stale directive is a finding:
	// partial runs cannot tell "nothing suppressed" from "its analyzer
	// did not run", so only the full suite convicts.
	if *only == "" {
		for _, u := range stale {
			findings = append(findings, analysis.Finding{
				Analyzer: "vet-ignore",
				Pos:      u.Pos,
				Message:  fmt.Sprintf("stale directive: %s (%s) suppresses no finding; delete it", u.Analyzer, u.Reason),
			})
		}
		sort.Slice(findings, func(i, j int) bool {
			a, b := findings[i], findings[j]
			if a.Pos.Filename != b.Pos.Filename {
				return a.Pos.Filename < b.Pos.Filename
			}
			return a.Pos.Line < b.Pos.Line
		})
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, f := range findings {
			// Field order matters downstream: scripts/check.sh rewrites
			// these lines into GitHub annotations with sed, not a JSON
			// parser.
			if err := enc.Encode(struct {
				File     string `json:"file"`
				Line     int    `json:"line"`
				Col      int    `json:"col"`
				Analyzer string `json:"analyzer"`
				Message  string `json:"message"`
			}{f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message}); err != nil {
				fmt.Fprintln(os.Stderr, "parapll-vet:", err)
				os.Exit(2)
			}
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "parapll-vet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
