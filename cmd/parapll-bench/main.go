// parapll-bench regenerates the paper's evaluation: Tables 3–5, Figures
// 5–7 and the introduction's query-latency comparison, on the synthetic
// stand-in datasets at a configurable scale.
//
// Usage:
//
//	parapll-bench -exp table3 -scale 0.05
//	parapll-bench -exp fig7 -scale 0.02 -nodes 6 -csv fig7.csv
//	parapll-bench -exp all -scale 0.01 -datasets Wiki-Vote,Gnutella
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"parapll/internal/bench"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: table3,table4,table5,fig5,fig6,fig7,query,ablations,sync,load,trace,serve,build,update,all")
		scale    = flag.Float64("scale", 0.02, "dataset scale in (0,1]; 1.0 = paper-scale (slow!)")
		datasets = flag.String("datasets", "", "comma-separated dataset filter (default: all)")
		threads  = flag.String("threads", "1,2,4,6,8,10,12", "thread sweep for tables 3-4")
		nodes    = flag.String("nodes", "1,2,3,4,5,6", "node sweep for table 5")
		syncs    = flag.String("syncs", "1,2,4,8,16,32,64,128", "sync-count sweep for figure 7")
		fig7n    = flag.Int("fig7nodes", 6, "cluster size for figure 7")
		perNode  = flag.Int("threads-per-node", 2, "threads per simulated cluster node")
		csvPath  = flag.String("csv", "", "also write results as CSV to this file")
		jsonPath = flag.String("json", "", "write the sync/load/trace/serve/build/update experiments' raw records as JSON to this file")
		batch    = flag.Int("batch", 0, "build experiment's batched-engine roots per frontier (0 = default)")
	)
	flag.Parse()

	cfg := bench.DefaultConfig(*scale)
	if *datasets != "" {
		cfg.Datasets = strings.Split(*datasets, ",")
	}
	var err error
	if cfg.Threads, err = parseInts(*threads); err != nil {
		fatalf("-threads: %v", err)
	}
	if cfg.Nodes, err = parseInts(*nodes); err != nil {
		fatalf("-nodes: %v", err)
	}
	if cfg.SyncCounts, err = parseInts(*syncs); err != nil {
		fatalf("-syncs: %v", err)
	}

	type runner struct {
		name string
		run  func() (*bench.Table, error)
	}
	var syncResults []bench.SyncResult
	var loadResults []bench.LoadResult
	var traceResults []bench.TraceResult
	var serveResults []bench.ServeResult
	var buildResults []bench.BuildResult
	var updateResults []bench.UpdateResult
	all := []runner{
		{"table3", func() (*bench.Table, error) { return bench.RunTable3(cfg) }},
		{"table4", func() (*bench.Table, error) { return bench.RunTable4(cfg) }},
		{"table5", func() (*bench.Table, error) { return bench.RunTable5(cfg, *perNode) }},
		{"fig5", func() (*bench.Table, error) { return bench.RunFig5(cfg) }},
		{"fig6", func() (*bench.Table, error) { return bench.RunFig6(cfg, maxOf(cfg.Threads)) }},
		{"fig7", func() (*bench.Table, error) { return bench.RunFig7(cfg, *fig7n, *perNode) }},
		{"query", func() (*bench.Table, error) { return bench.RunQueryComparison(cfg, maxOf(cfg.Threads)) }},
		{"ablations", func() (*bench.Table, error) { return bench.RunAblations(cfg, maxOf(cfg.Threads)) }},
		{"sync", func() (*bench.Table, error) {
			table, results, err := bench.RunSync(cfg, *fig7n, *perNode)
			if err != nil {
				return nil, err
			}
			syncResults = append(syncResults, results...)
			return table, nil
		}},
		{"load", func() (*bench.Table, error) {
			table, results, err := bench.RunLoad(cfg)
			if err != nil {
				return nil, err
			}
			loadResults = append(loadResults, results...)
			return table, nil
		}},
		{"trace", func() (*bench.Table, error) {
			table, results, err := bench.RunTrace(cfg, maxOf(cfg.Threads))
			if err != nil {
				return nil, err
			}
			traceResults = append(traceResults, results...)
			return table, nil
		}},
		{"serve", func() (*bench.Table, error) {
			table, results, err := bench.RunServe(cfg, maxOf(cfg.Threads))
			if err != nil {
				return nil, err
			}
			serveResults = append(serveResults, results...)
			return table, nil
		}},
		{"build", func() (*bench.Table, error) {
			table, results, err := bench.RunBuild(cfg, maxOf(cfg.Threads), *batch)
			if err != nil {
				return nil, err
			}
			buildResults = append(buildResults, results...)
			return table, nil
		}},
		{"update", func() (*bench.Table, error) {
			table, results, err := bench.RunUpdate(cfg, maxOf(cfg.Threads))
			if err != nil {
				return nil, err
			}
			updateResults = append(updateResults, results...)
			return table, nil
		}},
	}
	var selected []runner
	if *exp == "all" {
		selected = all
	} else {
		for _, r := range all {
			if r.name == *exp {
				selected = []runner{r}
			}
		}
		if selected == nil {
			fatalf("unknown experiment %q", *exp)
		}
	}

	var csvFile *os.File
	if *csvPath != "" {
		csvFile, err = os.Create(*csvPath)
		if err != nil {
			fatalf("creating %s: %v", *csvPath, err)
		}
		defer csvFile.Close()
	}
	for _, r := range selected {
		table, err := r.run()
		if err != nil {
			fatalf("%s: %v", r.name, err)
		}
		if err := table.WriteText(os.Stdout); err != nil {
			fatalf("rendering %s: %v", r.name, err)
		}
		fmt.Println()
		if csvFile != nil {
			fmt.Fprintf(csvFile, "# %s\n", r.name)
			if err := table.WriteCSV(csvFile); err != nil {
				fatalf("csv %s: %v", r.name, err)
			}
		}
	}
	if *jsonPath != "" {
		kinds := 0
		for _, nonEmpty := range []bool{
			len(syncResults) > 0, len(loadResults) > 0,
			len(traceResults) > 0, len(serveResults) > 0,
			len(buildResults) > 0, len(updateResults) > 0,
		} {
			if nonEmpty {
				kinds++
			}
		}
		if kinds == 0 {
			fatalf("-json requires the sync, load, trace, serve, build or update experiment (-exp sync/load/trace/serve/build/update or -exp all)")
		}
		jf, err := os.Create(*jsonPath)
		if err != nil {
			fatalf("creating %s: %v", *jsonPath, err)
		}
		defer jf.Close()
		// Single-experiment runs keep their legacy BENCH_<exp>.json shape
		// (a bare array) so existing tooling keeps parsing; mixed runs get
		// a keyed object.
		switch {
		case kinds == 1 && len(syncResults) > 0:
			err = bench.WriteSyncJSON(jf, syncResults)
		case kinds == 1 && len(loadResults) > 0:
			err = bench.WriteLoadJSON(jf, loadResults)
		case kinds == 1 && len(traceResults) > 0:
			err = bench.WriteTraceJSON(jf, traceResults)
		case kinds == 1 && len(serveResults) > 0:
			err = bench.WriteServeJSON(jf, serveResults)
		case kinds == 1 && len(buildResults) > 0:
			err = bench.WriteBuildJSON(jf, buildResults)
		case kinds == 1:
			err = bench.WriteUpdateJSON(jf, updateResults)
		default:
			enc := json.NewEncoder(jf)
			enc.SetIndent("", "  ")
			out := map[string]any{}
			if len(syncResults) > 0 {
				out["sync"] = syncResults
			}
			if len(loadResults) > 0 {
				out["load"] = loadResults
			}
			if len(traceResults) > 0 {
				out["trace"] = traceResults
			}
			if len(serveResults) > 0 {
				out["serve"] = serveResults
			}
			if len(buildResults) > 0 {
				out["build"] = buildResults
			}
			if len(updateResults) > 0 {
				out["update"] = updateResults
			}
			err = enc.Encode(out)
		}
		if err != nil {
			fatalf("json: %v", err)
		}
	}
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad value %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func maxOf(xs []int) int {
	best := xs[0]
	for _, x := range xs {
		if x > best {
			best = x
		}
	}
	return best
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "parapll-bench: "+format+"\n", args...)
	os.Exit(1)
}
