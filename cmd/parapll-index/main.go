// parapll-index runs the indexing stage: it loads a graph, builds the
// 2-hop-cover label index (serially or with the parallel ParaPLL engine)
// and writes the index to disk for parapll-query.
//
// Usage:
//
//	parapll-index -graph data/skitter.bin -out skitter.idx -threads 12 -policy dynamic
//	parapll-index -graph g.txt -out g.idx -serial
//	parapll-index -graph g.bin -out g.idx -format mmap    # zero-copy serving format
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"parapll"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "input graph file (.bin/.txt/.edges/.gr)")
		out       = flag.String("out", "", "output index file")
		threads   = flag.Int("threads", 0, "worker threads (0 = all cores)")
		policy    = flag.String("policy", "dynamic", "assignment policy: static or dynamic")
		ordering  = flag.String("order", "degree", "computing sequence: degree, psi or random")
		seed      = flag.Uint64("seed", 0, "seed for psi/random ordering")
		serial    = flag.Bool("serial", false, "use the serial weighted PLL baseline")
		format    = flag.String("format", "auto", "index file format: fixed, compact, mmap, or auto (by -out extension)")
	)
	flag.Parse()
	if *graphPath == "" || *out == "" {
		fatalf("need -graph and -out")
	}
	switch *format {
	case "auto", parapll.FormatFixed, parapll.FormatCompact, parapll.FormatMmap:
	default:
		fatalf("unknown format %q (want fixed, compact, mmap or auto)", *format)
	}

	g, err := parapll.LoadGraph(*graphPath)
	if err != nil {
		fatalf("loading graph: %v", err)
	}
	opt := parapll.Options{Threads: *threads, Seed: *seed}
	switch *policy {
	case "static":
		opt.Policy = parapll.Static
	case "dynamic":
		opt.Policy = parapll.Dynamic
	default:
		fatalf("unknown policy %q", *policy)
	}
	switch *ordering {
	case "degree":
		opt.Order = parapll.OrderDegree
	case "psi":
		opt.Order = parapll.OrderPsi
	case "random":
		opt.Order = parapll.OrderRandom
	default:
		fatalf("unknown order %q", *ordering)
	}

	t0 := time.Now()
	var idx *parapll.Index
	if *serial {
		idx = parapll.BuildSerial(g, opt)
	} else {
		idx = parapll.Build(g, opt)
	}
	elapsed := time.Since(t0)

	if *format == "auto" {
		err = parapll.SaveIndex(*out, idx)
	} else {
		err = parapll.SaveIndexAs(*out, idx, *format)
	}
	if err != nil {
		fatalf("saving index: %v", err)
	}
	fmt.Printf("indexed n=%d m=%d in %.2fs  (entries=%d, avg label size LN=%.1f) -> %s\n",
		g.NumVertices(), g.NumEdges(), elapsed.Seconds(),
		idx.NumEntries(), idx.AvgLabelSize(), *out)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "parapll-index: "+format+"\n", args...)
	os.Exit(1)
}
