// parapll-index runs the indexing stage: it loads a graph, builds the
// 2-hop-cover label index (serially or with the parallel ParaPLL engine)
// and writes the index to disk for parapll-query.
//
// Usage:
//
//	parapll-index -graph data/skitter.bin -out skitter.idx -threads 12 -policy dynamic
//	parapll-index -graph g.txt -out g.idx -serial
//	parapll-index -graph g.bin -out g.idx -format mmap    # zero-copy serving format
//	parapll-index -graph g.bin -out g.idx -engine batched # vertex-centric batched engine
//	parapll-index -graph g.bin -out g.idx -v              # live roots/s + ETA
//	parapll-index -graph g.bin -out g.idx -trace t.json   # build timeline (Perfetto)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"parapll"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "input graph file (.bin/.txt/.edges/.gr)")
		out       = flag.String("out", "", "output index file")
		threads   = flag.Int("threads", 0, "worker threads (0 = all cores)")
		policy    = flag.String("policy", "dynamic", "assignment policy: static or dynamic")
		ordering  = flag.String("order", "degree", "computing sequence: degree, psi or random")
		seed      = flag.Uint64("seed", 0, "seed for psi/random ordering")
		engine    = flag.String("engine", "perroot", "build engine: perroot (one pruned Dijkstra per root) or batched (vertex-centric root batches)")
		batch     = flag.Int("batch", 0, "batched engine's roots per frontier, 1-64 (0 = default 8)")
		serial    = flag.Bool("serial", false, "use the serial weighted PLL baseline")
		format    = flag.String("format", "auto", "index file format: fixed, compact, mmap, or auto (by -out extension)")
		verbose   = flag.Bool("v", false, "report live progress (roots/sec, ETA) every 2s on stderr")
		tracePath = flag.String("trace", "", "record a build timeline and write Chrome trace-event JSON here (open in chrome://tracing or Perfetto)")
	)
	flag.Parse()
	if *graphPath == "" || *out == "" {
		fatalf("need -graph and -out")
	}
	if *serial && *tracePath != "" {
		fatalf("-trace instruments the parallel engine; drop -serial")
	}
	switch *format {
	case "auto", parapll.FormatFixed, parapll.FormatCompact, parapll.FormatMmap:
	default:
		fatalf("unknown format %q (want fixed, compact, mmap or auto)", *format)
	}

	g, err := parapll.LoadGraph(*graphPath)
	if err != nil {
		fatalf("loading graph: %v", err)
	}
	opt := parapll.Options{Threads: *threads, Seed: *seed, BatchSize: *batch}
	switch *engine {
	case parapll.EnginePerRoot, parapll.EngineBatched:
		opt.Engine = *engine
	default:
		fatalf("unknown engine %q (want %s or %s)", *engine, parapll.EnginePerRoot, parapll.EngineBatched)
	}
	if *serial && *engine != parapll.EnginePerRoot {
		fatalf("-engine selects a parallel engine; drop -serial")
	}
	switch *policy {
	case "static":
		opt.Policy = parapll.Static
	case "dynamic":
		opt.Policy = parapll.Dynamic
	default:
		fatalf("unknown policy %q", *policy)
	}
	switch *ordering {
	case "degree":
		opt.Order = parapll.OrderDegree
	case "psi":
		opt.Order = parapll.OrderPsi
	case "random":
		opt.Order = parapll.OrderRandom
	default:
		fatalf("unknown order %q", *ordering)
	}

	var tr *parapll.Tracer
	if *tracePath != "" {
		tr = parapll.NewTracer(0, 0)
		tr.Enable()
		opt.Tracer = tr
	}

	t0 := time.Now()
	var stopLog func()
	if *verbose && !*serial {
		prog := &parapll.BuildProgress{}
		opt.Progress = prog
		stopLog = logProgress(prog, t0)
	}
	var idx *parapll.Index
	if *serial {
		idx = parapll.BuildSerial(g, opt)
	} else {
		idx = parapll.Build(g, opt)
	}
	if stopLog != nil {
		stopLog()
	}
	elapsed := time.Since(t0)

	if tr != nil {
		if err := writeTrace(*tracePath, tr); err != nil {
			fatalf("writing trace: %v", err)
		}
		fmt.Printf("trace: %d events (%d dropped) -> %s\n", len(tr.Events()), tr.Drops(), *tracePath)
	}

	if *format == "auto" {
		err = parapll.SaveIndex(*out, idx)
	} else {
		err = parapll.SaveIndexAs(*out, idx, *format)
	}
	if err != nil {
		fatalf("saving index: %v", err)
	}
	fmt.Printf("indexed n=%d m=%d in %.2fs  (entries=%d, avg label size LN=%.1f) -> %s\n",
		g.NumVertices(), g.NumEdges(), elapsed.Seconds(),
		idx.NumEntries(), idx.AvgLabelSize(), *out)
}

// logProgress samples prog every 2s and prints roots done, roots/sec
// and an ETA until the returned stop function is called. Quiet for fast
// builds: nothing prints before the first tick.
func logProgress(prog *parapll.BuildProgress, start time.Time) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(2 * time.Second)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				s := prog.Snapshot()
				elapsed := time.Since(start)
				line := fmt.Sprintf("indexing: %d/%d roots, %d labels, %.0f roots/s",
					s.RootsDone, s.TotalRoots, s.LabelsAdded, s.Rate(elapsed))
				if eta, ok := s.ETA(elapsed); ok {
					line += fmt.Sprintf(", ETA %s", eta.Round(time.Second))
				}
				fmt.Fprintln(os.Stderr, line)
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

// writeTrace dumps the recorded timeline as Chrome trace-event JSON.
func writeTrace(path string, tr *parapll.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "parapll-index: "+format+"\n", args...)
	os.Exit(1)
}
