// parapll-gen synthesizes the paper's Table-2 datasets (or any subset) to
// graph files for the indexing tools.
//
// Usage:
//
//	parapll-gen -list
//	parapll-gen -dataset Skitter -scale 0.1 -out data/ -format bin
//	parapll-gen -all -scale 0.05 -out data/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"parapll"
	"parapll/internal/gen"
	"parapll/internal/graph"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list available datasets and exit")
		dataset = flag.String("dataset", "", "dataset name to generate (see -list)")
		all     = flag.Bool("all", false, "generate every dataset")
		scale   = flag.Float64("scale", 1.0, "size scale in (0,1]; 1.0 = paper-scale")
		out     = flag.String("out", ".", "output directory")
		format  = flag.String("format", "bin", "output format: bin or txt")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-12s %10s %10s  %s\n", "name", "n", "m", "type")
		for _, rec := range gen.Datasets {
			fmt.Printf("%-12s %10d %10d  %s\n", rec.Name, rec.N, rec.M, rec.Kind)
		}
		return
	}
	ext := map[string]string{"bin": ".bin", "txt": ".txt"}[*format]
	if ext == "" {
		fatalf("unknown format %q (want bin or txt)", *format)
	}

	var recs []gen.Recipe
	switch {
	case *all:
		recs = gen.Datasets
	case *dataset != "":
		rec, err := gen.FindRecipe(*dataset)
		if err != nil {
			fatalf("%v (use -list)", err)
		}
		recs = []gen.Recipe{rec}
	default:
		fatalf("need -dataset NAME, -all, or -list")
	}

	for _, rec := range recs {
		g := rec.Generate(*scale)
		name := strings.ToLower(rec.Name) + ext
		path := filepath.Join(*out, name)
		if err := parapll.SaveGraph(path, g); err != nil {
			fatalf("saving %s: %v", path, err)
		}
		s := graph.Summarize(g)
		fmt.Printf("%-12s -> %s  (n=%d m=%d maxdeg=%d components=%d)\n",
			rec.Name, path, s.N, s.M, s.MaxDegree, s.Components)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "parapll-gen: "+format+"\n", args...)
	os.Exit(1)
}
