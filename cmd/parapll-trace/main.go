// parapll-trace works with the Chrome trace-event JSON files the other
// binaries record with their -trace flags.
//
// Usage:
//
//	parapll-trace merge -out merged.json build.rank0.json build.rank1.json ...
//	parapll-trace check build.json
//
// merge aligns per-rank captures (each records its own wall-clock
// epoch) onto one timeline and writes a single file whose process lanes
// are the ranks and whose flow arrows are the label-sync frames —
// open it in chrome://tracing or https://ui.perfetto.dev.
//
// check validates a capture without opening a browser: well-formed
// traceEvents, known phases, per-lane monotonic timestamps — and prints
// a one-line summary. check also accepts a flight-recorder bundle (from
// GET /debug/bundle or the -flight spool): it detects the bundle shape
// and validates the trace embedded inside it.
package main

import (
	"flag"
	"fmt"
	"os"

	"parapll/internal/flight"
	"parapll/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "merge":
		runMerge(os.Args[2:])
	case "check":
		runCheck(os.Args[2:])
	default:
		usage()
	}
}

func runMerge(args []string) {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	out := fs.String("out", "", "output file for the merged timeline")
	fs.Parse(args)
	if *out == "" || fs.NArg() == 0 {
		fatalf("merge needs -out and at least one input trace")
	}
	if err := trace.MergeFiles(*out, fs.Args()); err != nil {
		fatalf("%v", err)
	}
	data, err := os.ReadFile(*out)
	if err != nil {
		fatalf("%v", err)
	}
	st, err := trace.CheckCapture(data)
	if err != nil {
		fatalf("merged file failed validation: %v", err)
	}
	fmt.Printf("merged %d captures -> %s (%d events: %d spans, %d flow edges, ranks %v, %d dropped)\n",
		fs.NArg(), *out, st.Events, st.Spans, st.Flows, st.Pids, st.Drops)
}

func runCheck(args []string) {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatalf("check takes exactly one trace file")
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	// Sniff the shape first: a flight bundle wraps its trace, so the
	// bare validator would reject it for the wrong reason.
	if b, berr := flight.ParseBundle(data); berr == nil {
		if len(b.Trace) == 0 {
			fatalf("%s: flight bundle has no embedded trace (trace_error=%q)", fs.Arg(0), b.TraceError)
		}
		st, err := trace.CheckCapture(b.Trace)
		if err != nil {
			fatalf("%s: embedded trace: %v", fs.Arg(0), err)
		}
		fmt.Printf("%s: flight bundle ok (reason %q, %d recent errors, %d metric samples; trace: %d events, %d spans, %d dropped)\n",
			fs.Arg(0), b.Meta.Reason, len(b.Errors), len(b.MetricRing), st.Events, st.Spans, st.Drops)
		return
	}
	st, err := trace.CheckCapture(data)
	if err != nil {
		fatalf("%s: %v", fs.Arg(0), err)
	}
	fmt.Printf("%s: ok (%d events: %d spans, %d flow edges, pids %v, %d dropped)\n",
		fs.Arg(0), st.Events, st.Spans, st.Flows, st.Pids, st.Drops)
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  parapll-trace merge -out merged.json rank0.json rank1.json ...
  parapll-trace check trace.json
`)
	os.Exit(2)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "parapll-trace: "+format+"\n", args...)
	os.Exit(1)
}
