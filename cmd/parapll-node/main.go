// parapll-node runs one rank of a real multi-process ParaPLL cluster over
// TCP, or — with -launch — spawns a whole local cluster of itself.
//
// Distributed usage (one command per machine/process):
//
//	parapll-node -rank 0 -size 3 -root 10.0.0.1:7777 -graph g.bin -out g.idx
//	parapll-node -rank 1 -size 3 -root 10.0.0.1:7777 -graph g.bin
//	parapll-node -rank 2 -size 3 -root 10.0.0.1:7777 -graph g.bin
//
// Local-cluster usage (spawns size-1 child processes):
//
//	parapll-node -launch -size 4 -graph g.bin -out g.idx
//
// Every rank builds the identical cluster-wide index; only ranks given
// -out write it to disk.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strings"
	"time"

	"parapll"
	"parapll/internal/cluster"
	"parapll/internal/core"
	"parapll/internal/mpi"
	"parapll/internal/order"
)

func main() {
	var (
		rank      = flag.Int("rank", 0, "this process's rank in [0,size)")
		size      = flag.Int("size", 1, "number of cluster nodes")
		rootAddr  = flag.String("root", "127.0.0.1:7777", "rendezvous address rank 0 listens on")
		graphPath = flag.String("graph", "", "graph file (same on every rank)")
		out       = flag.String("out", "", "write the final index here (optional)")
		threads   = flag.Int("threads", 0, "worker threads per node (0 = all cores)")
		policy    = flag.String("policy", "dynamic", "intra-node policy: static or dynamic")
		syncCount = flag.Int("syncs", 1, "number of label synchronizations (paper's c)")
		overlap   = flag.Bool("overlap", false, "overlap each sync's exchange+merge with the next segment's computation (must match on every rank)")
		launch    = flag.Bool("launch", false, "spawn size-1 child ranks locally and run as rank 0")
		verbose   = flag.Bool("v", false, "report per-round sync volume and transport totals")
		tracePath = flag.String("trace", "", "record this rank's build timeline as Chrome trace-event JSON; rank r writes <path>.rank<r>.json (merge with parapll-trace)")
	)
	flag.Parse()
	if *graphPath == "" {
		fatalf("need -graph")
	}
	pol := core.Dynamic
	switch *policy {
	case "dynamic":
	case "static":
		pol = core.Static
	default:
		fatalf("unknown policy %q", *policy)
	}

	if *launch {
		if *rank != 0 {
			fatalf("-launch implies rank 0")
		}
		if err := launchChildren(*size, *rootAddr, *graphPath, *threads, *policy, *syncCount, *overlap, *verbose, *tracePath); err != nil {
			fatalf("launching children: %v", err)
		}
	}

	g, err := parapll.LoadGraph(*graphPath)
	if err != nil {
		fatalf("loading graph: %v", err)
	}
	comm, err := mpi.ConnectTCP(*rank, *size, *rootAddr, "")
	if err != nil {
		fatalf("joining cluster: %v", err)
	}
	defer comm.Close()
	fmt.Fprintf(os.Stderr, "rank %d/%d up (graph n=%d m=%d)\n", *rank, *size, g.NumVertices(), g.NumEdges())

	var tr *parapll.Tracer
	if *tracePath != "" {
		tr = parapll.NewTracer(*rank, 0)
		tr.Enable()
	}

	t0 := time.Now()
	idx, st, err := cluster.Build(g, cluster.Options{
		Comm:      comm,
		Threads:   *threads,
		Policy:    pol,
		Order:     order.Degree(g),
		SyncCount: *syncCount,
		Overlap:   *overlap,
		Tracer:    tr,
	})
	if err != nil {
		fatalf("indexing: %v", err)
	}
	if tr != nil {
		rankPath := rankTracePath(*tracePath, *rank)
		if err := writeTrace(rankPath, tr); err != nil {
			fatalf("writing trace: %v", err)
		}
		fmt.Fprintf(os.Stderr, "rank %d: trace (%d events, %d dropped) -> %s\n",
			*rank, len(tr.Events()), tr.Drops(), rankPath)
		if *rank == 0 && *size > 1 {
			fmt.Fprintf(os.Stderr, "merge the cross-rank timeline with: parapll-trace merge -out %s %s\n",
				*tracePath, rankTracePath(*tracePath, -1))
		}
	}
	fmt.Printf("rank %d: indexed in %.2fs (comp %.2fs, comm %.2fs, %d local roots, sent %d bytes) LN=%.1f\n",
		*rank, time.Since(t0).Seconds(), st.CompTime.Seconds(), st.CommTime.Seconds(),
		st.LocalRoots, st.BytesSent, idx.AvgLabelSize())
	if *verbose {
		for i, r := range st.Rounds {
			fmt.Printf("rank %d: sync %d/%d: sent %d labels (%d wire / %d raw bytes), merged %d labels (%d wire / %d raw bytes)\n",
				*rank, i+1, len(st.Rounds), r.UpdatesSent, r.BytesSent, r.RawBytesSent,
				r.UpdatesReceived, r.BytesReceived, r.RawBytesReceived)
		}
		ratio := 1.0
		if st.BytesSent+st.BytesReceived > 0 {
			ratio = float64(st.RawBytesSent+st.RawBytesReceived) / float64(st.BytesSent+st.BytesReceived)
		}
		fmt.Printf("rank %d: sync totals: %d wire / %d raw bytes (%.2fx compression), finalize %.3fs\n",
			*rank, st.BytesSent+st.BytesReceived, st.RawBytesSent+st.RawBytesReceived, ratio,
			st.FinalizeTime.Seconds())
		if ins, ok := comm.(mpi.Instrumented); ok {
			cs := ins.Stats()
			fmt.Printf("rank %d: transport: %d msgs / %d bytes sent, %d msgs / %d bytes received\n",
				*rank, cs.MsgsSent, cs.BytesSent, cs.MsgsRecv, cs.BytesRecv)
		}
	}

	if *out != "" {
		if err := parapll.SaveIndex(*out, idx); err != nil {
			fatalf("saving index: %v", err)
		}
		fmt.Printf("rank %d: index -> %s\n", *rank, *out)
	}
}

// launchChildren starts ranks 1..size-1 as child processes of this binary
// and returns immediately; the caller continues as rank 0. Children
// inherit stdout/stderr.
func launchChildren(size int, rootAddr, graphPath string, threads int, policy string, syncs int, overlap, verbose bool, tracePath string) error {
	if size < 2 {
		return nil
	}
	if _, _, err := net.SplitHostPort(rootAddr); err != nil {
		return fmt.Errorf("bad -root %q: %v", rootAddr, err)
	}
	self, err := os.Executable()
	if err != nil {
		return err
	}
	for r := 1; r < size; r++ {
		args := []string{
			"-rank", fmt.Sprint(r),
			"-size", fmt.Sprint(size),
			"-root", rootAddr,
			"-graph", graphPath,
			"-threads", fmt.Sprint(threads),
			"-policy", policy,
			"-syncs", fmt.Sprint(syncs),
		}
		if overlap {
			args = append(args, "-overlap")
		}
		if verbose {
			args = append(args, "-v")
		}
		if tracePath != "" {
			args = append(args, "-trace", tracePath)
		}
		cmd := exec.Command(self, args...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("rank %d: %w", r, err)
		}
		// Children are intentionally not waited on: each exits after the
		// collective build completes, and rank 0's own completion implies
		// theirs (the final allgather is a synchronization point).
		go cmd.Wait()
	}
	return nil
}

// rankTracePath derives rank r's trace filename from the shared -trace
// path: base.rank<r>.json. r < 0 yields the matching shell glob.
func rankTracePath(path string, r int) string {
	base := strings.TrimSuffix(path, ".json")
	if r < 0 {
		return base + ".rank*.json"
	}
	return fmt.Sprintf("%s.rank%d.json", base, r)
}

// writeTrace dumps the recorded timeline as Chrome trace-event JSON.
func writeTrace(path string, tr *parapll.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "parapll-node: "+format+"\n", args...)
	os.Exit(1)
}
