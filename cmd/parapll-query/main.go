// parapll-query runs the querying stage: it loads an index built by
// parapll-index and answers distance queries — explicit pairs, a random
// batch with latency statistics, or a verification pass against Dijkstra.
//
// Usage:
//
//	parapll-query -index g.idx -pair 17,2042 -pair 5,9
//	parapll-query -index g.idx -pair 17,2042 -explain
//	parapll-query -index g.idx -random 10000
//	parapll-query -index g.idx -graph g.bin -verify 100
//
// -explain answers each -pair through the instrumented cold-path
// sibling of the merge kernel and prints a JSON cost breakdown per
// pair: label lengths, the strategy the dispatch chose (linear vs.
// gallop), hubs probed, pointer/probe step counts, the meeting hub, and
// the merge's nanosecond cost — the offline twin of the server's
// GET /debug/explain.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"parapll"
	"parapll/internal/stats"
)

type pairList [][2]parapll.Vertex

func (p *pairList) String() string { return fmt.Sprint(*p) }
func (p *pairList) Set(s string) error {
	var a, b int64
	if _, err := fmt.Sscanf(s, "%d,%d", &a, &b); err != nil {
		return fmt.Errorf("want S,T: %v", err)
	}
	*p = append(*p, [2]parapll.Vertex{parapll.Vertex(a), parapll.Vertex(b)})
	return nil
}

func main() {
	var pairs pairList
	var (
		indexPath = flag.String("index", "", "index file from parapll-index")
		graphPath = flag.String("graph", "", "graph file (needed for -verify)")
		random    = flag.Int("random", 0, "time N random queries and print latency stats")
		verify    = flag.Int("verify", 0, "cross-check N random sources against Dijkstra")
		seed      = flag.Int64("seed", 1, "seed for -random/-verify")
		explain   = flag.Bool("explain", false, "answer each -pair through the instrumented kernel and print a JSON cost breakdown")
	)
	flag.Var(&pairs, "pair", "query pair S,T (repeatable)")
	flag.Parse()
	if *indexPath == "" {
		fatalf("need -index")
	}
	loaded, err := parapll.LoadIndex(*indexPath)
	if err != nil {
		fatalf("loading index: %v", err)
	}
	// Everything below queries through the Oracle interface — the code
	// is identical whether the index is heap-decoded or mmap-backed.
	var idx parapll.Oracle = loaded
	n := idx.NumVertices()
	fmt.Printf("index: n=%d entries=%d LN=%.1f format=%s mmap=%v\n",
		n, loaded.NumEntries(), loaded.AvgLabelSize(), loaded.Format(), loaded.Mapped())

	// Validate every pair up front: the index's Query panics (by
	// documented contract) on out-of-range ids, and the CLI should
	// report a usable error before any partial output, not a stack
	// trace mid-run.
	for _, p := range pairs {
		if int(p[0]) >= n || int(p[1]) >= n || p[0] < 0 || p[1] < 0 {
			fatalf("pair %d,%d out of range: index has vertices [0,%d)", p[0], p[1], n)
		}
	}
	if (*random > 0 || *verify > 0) && n == 0 {
		fatalf("index has no vertices; nothing to sample for -random/-verify")
	}

	if *explain && len(pairs) == 0 {
		fatalf("-explain needs at least one -pair")
	}
	if *explain {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		for _, p := range pairs {
			ex := loaded.QueryExplain(p[0], p[1])
			// Same wire encoding as the server: -1 = unreachable.
			wire := struct {
				parapll.Explain
				Dist int64 `json:"dist"`
			}{Explain: ex, Dist: -1}
			if ex.Reachable {
				wire.Dist = int64(ex.Dist)
			}
			if err := enc.Encode(wire); err != nil {
				fatalf("encoding explain: %v", err)
			}
		}
	} else {
		for _, p := range pairs {
			d := idx.Query(p[0], p[1])
			if d == parapll.Inf {
				fmt.Printf("d(%d,%d) = unreachable\n", p[0], p[1])
			} else {
				fmt.Printf("d(%d,%d) = %d\n", p[0], p[1], d)
			}
		}
	}

	if *random > 0 {
		r := rand.New(rand.NewSource(*seed))
		qs := make([][2]parapll.Vertex, *random)
		for i := range qs {
			qs[i] = [2]parapll.Vertex{parapll.Vertex(r.Intn(n)), parapll.Vertex(r.Intn(n))}
		}
		lat := make([]float64, len(qs))
		for i, q := range qs {
			t0 := time.Now()
			idx.Query(q[0], q[1])
			lat[i] = float64(time.Since(t0).Nanoseconds()) / 1e3
		}
		s := stats.Summarize(lat)
		fmt.Printf("%d random queries: mean %.3fus  p50 %.3fus  p99 %.3fus  max %.3fus\n",
			s.N, s.Mean, stats.Percentile(lat, 50), stats.Percentile(lat, 99), s.Max)
	}

	if *verify > 0 {
		if *graphPath == "" {
			fatalf("-verify needs -graph")
		}
		g, err := parapll.LoadGraph(*graphPath)
		if err != nil {
			fatalf("loading graph: %v", err)
		}
		if g.NumVertices() != n {
			fatalf("graph has %d vertices, index has %d", g.NumVertices(), n)
		}
		r := rand.New(rand.NewSource(*seed))
		for i := 0; i < *verify; i++ {
			s := parapll.Vertex(r.Intn(n))
			want := parapll.Dijkstra(g, s)
			for probe := 0; probe < 32; probe++ {
				u := parapll.Vertex(r.Intn(n))
				if got := idx.Query(s, u); got != want[u] {
					fatalf("MISMATCH: d(%d,%d) index=%d dijkstra=%d", s, u, got, want[u])
				}
			}
		}
		fmt.Printf("verified %d random sources x 32 targets against Dijkstra: all exact\n", *verify)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "parapll-query: "+format+"\n", args...)
	os.Exit(1)
}
