// parapll-server serves a built index as an HTTP JSON API — distance
// queries, batches, optional path reconstruction, and stats.
//
// Usage:
//
//	parapll-server -index g.idx -addr :8080
//	parapll-server -graph g.bin -addr :8080            # index on startup
//	parapll-server -graph g.bin -paths -addr :8080     # also serve /path
//
// Endpoints: GET /query?s=&t=   POST /batch   GET /path?s=&t=   GET /stats
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"parapll"
	"parapll/internal/core"
	"parapll/internal/fileio"
	"parapll/internal/pathidx"
	"parapll/internal/server"
)

func main() {
	var (
		indexPath = flag.String("index", "", "pre-built index file (from parapll-index)")
		graphPath = flag.String("graph", "", "graph file; indexed at startup if -index is not given")
		addr      = flag.String("addr", "127.0.0.1:8080", "listen address")
		threads   = flag.Int("threads", 0, "indexing threads (0 = all cores)")
		paths     = flag.Bool("paths", false, "also build a path index and serve /path (needs -graph)")
	)
	flag.Parse()

	var idx *parapll.Index
	var err error
	switch {
	case *indexPath != "":
		idx, err = fileio.LoadIndex(*indexPath)
		if err != nil {
			fatalf("loading index: %v", err)
		}
	case *graphPath != "":
		g, err := parapll.LoadGraph(*graphPath)
		if err != nil {
			fatalf("loading graph: %v", err)
		}
		t0 := time.Now()
		idx = parapll.Build(g, parapll.Options{Threads: *threads, Policy: parapll.Dynamic})
		fmt.Printf("indexed %d vertices in %.2fs\n", g.NumVertices(), time.Since(t0).Seconds())
	default:
		fatalf("need -index or -graph")
	}

	var pidx *pathidx.Index
	if *paths {
		if *graphPath == "" {
			fatalf("-paths needs -graph")
		}
		g, err := parapll.LoadGraph(*graphPath)
		if err != nil {
			fatalf("loading graph: %v", err)
		}
		t0 := time.Now()
		pidx = pathidx.Build(g, pathidx.Options{Threads: *threads, Policy: core.Dynamic})
		fmt.Printf("path index built in %.2fs\n", time.Since(t0).Seconds())
	}

	fmt.Printf("serving on http://%s  (n=%d, entries=%d, LN=%.1f, paths=%v)\n",
		*addr, idx.NumVertices(), idx.NumEntries(), idx.AvgLabelSize(), pidx != nil)
	if err := http.ListenAndServe(*addr, server.New(idx, pidx)); err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "parapll-server: "+format+"\n", args...)
	os.Exit(1)
}
