// parapll-server serves a built index as an HTTP JSON API — distance
// queries, batches, optional path reconstruction, stats, and the
// observability endpoints /metrics and /healthz.
//
// The listener comes up immediately; the index loads (or builds) in the
// background and is published atomically when ready. Until then /readyz
// answers 503 and query endpoints answer 503 "index is still loading",
// so orchestrators can distinguish "starting" from "broken". A running
// server hot-swaps its index without dropping queries via POST /reload
// (optionally {"path": "other.idx"}) or SIGHUP.
//
// Usage:
//
//	parapll-server -index g.idx -addr :8080
//	parapll-server -index g.midx -addr :8080           # mmap: O(1) open
//	parapll-server -graph g.bin -addr :8080            # index on startup
//	parapll-server -graph g.bin -paths -addr :8080     # also serve /path
//	parapll-server -index g.idx -pprof -addr :8080     # + /debug/pprof/
//
// Endpoints: GET /query?s=&t=   POST /batch   GET /path?s=&t=
// GET /knn?s=&k=   GET /stats   POST /update   POST /reload   GET /readyz
// GET /metrics (JSON, or Prometheus text under Accept: text/plain)
// GET /healthz   GET /debug/slow   GET /debug/trace?sec=N
// GET /debug/explain?s=&t=   GET /debug/health   GET /debug/bundle
// and, with -pprof, the standard net/http/pprof handlers under
// /debug/pprof/ (opt-in: profiling endpoints leak internals and cost
// CPU, so they stay off unless asked for).
//
// Serving flags: -cache-entries bounds the (s,t) distance LRU cache
// (generation-keyed, so a /reload hot-swap can never serve distances
// from the previous graph; 0 disables); -batch-threads caps the
// goroutine fan-out of one /batch request.
//
// Living-graph flags: -wal DIR turns the server into an updatable
// deployment — POST /update durably inserts edges (fsynced to
// DIR/wal.log before they are applied, so acknowledged inserts survive
// kill -9, and replayed on restart), -compact-every N folds the log
// into a fresh checkpoint artifact in the background once it holds N
// records (publishing it through the same generation machinery as
// /reload), and -compact-threads bounds that rebuild's parallelism.
// Living-graph mode needs -graph, and it disables the distance cache:
// distances mutate within a generation, so a cached answer could
// outlive the insert that shortened it.
//
// Observability flags: -slow-ms bounds the /debug/slow slow-query log;
// -trace-sample N records a span for 1 in N requests; -trace FILE
// writes the recorded timeline as Chrome trace-event JSON on
// SIGINT/SIGTERM (and arms /debug/trace even with sampling off).
//
// Diagnostics flags: -flight DIR arms the always-on flight recorder —
// a bounded spool of self-contained incident bundles (recent trace,
// metrics, goroutine/heap profiles, /stats, WAL state) written on
// GET /debug/bundle, on any handler panic, on SIGQUIT, and on every SLO
// breach; -flight-keep / -flight-gap-ms / -flight-trace-sec bound the
// spool, the auto-capture rate, and the trace window. -slo-window-ms
// arms the anomaly watchdog (GET /debug/health, slo.* gauges on
// /metrics): -slo-query-p99-us watches the windowed /query+/batch p99,
// -slo-fsync-p99-us the WAL fsync p99 (living-graph mode),
// -slo-compact-ms flags a compaction running past its deadline, and a
// reload-failure rule is always on.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"parapll"
	"parapll/internal/compact"
	"parapll/internal/core"
	"parapll/internal/fileio"
	"parapll/internal/flight"
	"parapll/internal/label"
	"parapll/internal/metrics"
	"parapll/internal/pathidx"
	"parapll/internal/server"
)

func main() {
	var (
		indexPath  = flag.String("index", "", "pre-built index file (from parapll-index)")
		graphPath  = flag.String("graph", "", "graph file; indexed at startup if -index is not given")
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address")
		threads    = flag.Int("threads", 0, "indexing threads (0 = all cores)")
		paths      = flag.Bool("paths", false, "also build a path index and serve /path (needs -graph)")
		pprofOn    = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
		traceOut   = flag.String("trace", "", "on SIGINT/SIGTERM, write the recorded request timeline here as Chrome trace-event JSON")
		traceRate  = flag.Int64("trace-sample", 0, "record request spans for 1 in N requests (0 = tracing off, 1 = every request); also arms GET /debug/trace")
		slowMS     = flag.Int64("slow-ms", 100, "log requests slower than this to GET /debug/slow (0 disables)")
		cacheEnts  = flag.Int("cache-entries", 65536, "bound of the (s,t) distance LRU cache, positive and negative answers (0 disables)")
		batchThr   = flag.Int("batch-threads", 0, "goroutine fan-out per /batch request (0 = min(4, GOMAXPROCS))")
		walDir     = flag.String("wal", "", "living-graph mode: directory for the edge-update WAL and compaction checkpoints (needs -graph; enables POST /update)")
		compactN   = flag.Int("compact-every", 0, "living-graph mode: background-compact once the WAL holds this many records (0 = only on restart)")
		compactThr = flag.Int("compact-threads", 0, "living-graph mode: threads for compaction rebuilds (0 = all cores)")

		flightDir      = flag.String("flight", "", "arm the flight recorder: spool incident bundles into this directory (enables GET /debug/bundle, panic/SIGQUIT dumps)")
		flightKeep     = flag.Int("flight-keep", 8, "flight recorder: keep at most this many bundles on disk")
		flightGapMS    = flag.Int64("flight-gap-ms", 30000, "flight recorder: minimum gap between automatic (breach-triggered) captures")
		flightTraceSec = flag.Int64("flight-trace-sec", 30, "flight recorder: seconds of recent trace history embedded in each bundle")

		sloWindowMS   = flag.Int64("slo-window-ms", 0, "arm the anomaly watchdog with this evaluation window (0 = off; enables GET /debug/health)")
		sloQueryP99US = flag.Int64("slo-query-p99-us", 0, "SLO: breach when the windowed /query+/batch p99 exceeds this many microseconds (0 = rule off)")
		sloFsyncP99US = flag.Int64("slo-fsync-p99-us", 0, "SLO: breach when the windowed WAL fsync p99 exceeds this many microseconds (living-graph mode; 0 = rule off)")
		sloCompactMS  = flag.Int64("slo-compact-ms", 0, "SLO: breach when a compaction has been running longer than this many milliseconds (0 = rule off)")
	)
	flag.Parse()
	if *indexPath == "" && *graphPath == "" {
		fatalf("need -index or -graph")
	}
	if *paths && *graphPath == "" {
		fatalf("-paths needs -graph")
	}
	if *walDir != "" && *graphPath == "" {
		fatalf("-wal needs -graph (the pipeline folds updates into the graph)")
	}
	if *walDir != "" && *cacheEnts != 0 {
		// Living-graph distances mutate within a generation; the
		// generation-keyed cache would serve overestimates.
		*cacheEnts = 0
	}

	srv := server.NewPending(metrics.NewRegistry())
	srv.SetLoader(func(path string) (*label.Index, *pathidx.Index, error) {
		idx, err := fileio.LoadIndex(path)
		return idx, nil, err // nil pidx: a reload keeps the current path index
	})
	srv.SlowQueries().SetThreshold(time.Duration(*slowMS) * time.Millisecond)
	srv.SetCacheEntries(*cacheEnts) // before the first Publish: snapshots wrap at publish time
	srv.SetBatchThreads(*batchThr)

	var tr *parapll.Tracer
	if *traceRate > 0 || *traceOut != "" {
		tr = parapll.NewTracer(0, 0)
		if *traceRate > 0 {
			tr.SetSample(uint64(*traceRate))
			tr.Enable()
		}
		// With only -trace, the tracer stays disabled until a
		// GET /debug/trace capture turns it on for its window.
		srv.SetTracer(tr)
	}
	if *traceOut != "" {
		term := make(chan os.Signal, 1)
		signal.Notify(term, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-term
			f, err := os.Create(*traceOut)
			if err == nil {
				err = tr.WriteJSON(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "parapll-server: writing trace: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("trace: %d events (%d dropped) -> %s\n", len(tr.Events()), tr.Drops(), *traceOut)
			os.Exit(0)
		}()
	}

	// Flight recorder: bundles are only as good as the trace they embed,
	// so -flight with no tracer arms one recording every request.
	var rec *flight.Recorder
	if *flightDir != "" {
		if tr == nil {
			tr = parapll.NewTracer(0, 0)
			tr.SetSample(1)
			tr.Enable()
			srv.SetTracer(tr)
		}
		var err error
		rec, err = flight.New(flight.Options{
			Dir:         *flightDir,
			MaxBundles:  *flightKeep,
			MinGap:      time.Duration(*flightGapMS) * time.Millisecond,
			TraceWindow: time.Duration(*flightTraceSec) * time.Second,
		}, flight.Sources{
			Tracer:   srv.Tracer,
			Registry: srv.Registry(),
			Stats:    srv.StatsPayload,
			WAL: func() any {
				up := srv.Updater()
				if up == nil {
					return nil
				}
				st := up.Stats()
				return &st
			},
			Health: func() any {
				wd := srv.Watchdog()
				if wd == nil {
					return nil
				}
				return wd.Health()
			},
		})
		if err != nil {
			fatalf("arming flight recorder: %v", err)
		}
		srv.SetFlight(rec)
		// SIGQUIT = "dump evidence and die": the bundle carries the same
		// goroutine stacks the default handler would print, plus the
		// trace/metrics context the stacks alone lack.
		quit := make(chan os.Signal, 1)
		signal.Notify(quit, syscall.SIGQUIT)
		go func() {
			<-quit
			path, err := rec.Trigger("sigquit")
			if err != nil {
				fmt.Fprintf(os.Stderr, "parapll-server: SIGQUIT flight capture: %v\n", err)
				os.Exit(2)
			}
			fmt.Fprintf(os.Stderr, "parapll-server: SIGQUIT: flight bundle -> %s\n", path)
			os.Exit(2)
		}()
		fmt.Printf("flight recorder armed: spool %s (keep %d)\n", *flightDir, *flightKeep)
	}

	// Anomaly watchdog: windowed SLO verdicts at /debug/health, slo.*
	// gauges on /metrics, and (with -flight) a rate-limited capture on
	// every breach.
	var fsyncWin *metrics.WindowedHistogram
	if *sloWindowMS > 0 {
		var rules []string
		wd := flight.NewWatchdog(flight.WatchdogOptions{
			Window:   time.Duration(*sloWindowMS) * time.Millisecond,
			Registry: srv.Registry(),
			Recorder: rec,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "parapll-server: "+format+"\n", args...)
			},
		})
		if *sloQueryP99US > 0 {
			qwin := metrics.NewWindowed(metrics.DefaultLatencyBuckets, 6)
			srv.SetQueryLatencyWindow(qwin)
			wd.AddLatencyRule("query_p99", "us", qwin, 0.99, *sloQueryP99US, 1)
			rules = append(rules, fmt.Sprintf("query p99 > %dus", *sloQueryP99US))
		}
		if *sloFsyncP99US > 0 && *walDir != "" {
			fsyncWin = metrics.NewWindowed(metrics.DefaultLatencyBuckets, 6)
			wd.AddLatencyRule("wal_fsync_p99", "us", fsyncWin, 0.99, *sloFsyncP99US, 1)
			rules = append(rules, fmt.Sprintf("wal fsync p99 > %dus", *sloFsyncP99US))
		}
		if *sloCompactMS > 0 && *walDir != "" {
			deadline := *sloCompactMS
			wd.AddProbeRule("compact_deadline", "ms", deadline, func() (int64, bool) {
				up := srv.Updater()
				if up == nil {
					return 0, false
				}
				since := up.Stats().CompactingSinceUnixNano
				if since == 0 {
					return 0, false
				}
				ms := (time.Now().UnixNano() - since) / int64(time.Millisecond)
				return ms, ms > deadline
			})
			rules = append(rules, fmt.Sprintf("compact > %dms", deadline))
		}
		wd.AddCounterRule("reload_failures", srv.ReloadFailures(), 0)
		rules = append(rules, "any reload failure")
		srv.SetWatchdog(wd)
		wd.Start()
		fmt.Printf("watchdog armed: window %dms (%s)\n",
			*sloWindowMS, strings.Join(rules, ", "))
	}

	// Load or build off-thread so the listener (and /readyz, /healthz,
	// /metrics) is up from the first moment.
	go func() {
		if *walDir != "" {
			var onFsync func(time.Duration)
			if fsyncWin != nil {
				win := fsyncWin
				onFsync = func(d time.Duration) { win.Observe(d.Microseconds()) }
			}
			prepareLive(srv, *walDir, *indexPath, *graphPath, *compactN, *compactThr, onFsync)
			return
		}
		idx, pidx, source := prepare(*indexPath, *graphPath, *paths, *threads)
		gen := srv.Publish(idx, pidx, source)
		fmt.Printf("ready: generation %d  (n=%d, entries=%d, LN=%.1f, format=%s, mmap=%v, paths=%v)\n",
			gen, idx.NumVertices(), idx.NumEntries(), idx.AvgLabelSize(),
			idx.Format(), idx.Mapped(), pidx != nil)
	}()

	// SIGHUP re-reads the current index file and swaps it in atomically —
	// the classic "rotate the artifact, nudge the daemon" flow.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			gen, err := srv.Reload("")
			if err != nil {
				fmt.Fprintf(os.Stderr, "parapll-server: SIGHUP reload: %v\n", err)
				continue
			}
			fmt.Printf("SIGHUP reload: now at generation %d\n", gen)
		}
	}()

	handler := http.Handler(srv)
	if *pprofOn {
		mux := http.NewServeMux()
		mux.Handle("/", srv)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}

	fmt.Printf("listening on http://%s  (pprof=%v); index loading in background, poll /readyz\n",
		*addr, *pprofOn)
	if err := http.ListenAndServe(*addr, handler); err != nil {
		fatalf("%v", err)
	}
}

// prepareLive boots the living-graph pipeline: open (or create) the
// WAL directory's checkpoint + log, replay pending updates, install the
// pipeline as the server's updater, and publish the checkpoint artifact
// as the first snapshot. Compactions publish their fresh artifact back
// through the server's /reload machinery, so the generation counter
// advances exactly once per checkpoint roll.
func prepareLive(srv *server.Server, walDir, indexPath, graphPath string, compactEvery, compactThreads int, onFsync func(time.Duration)) {
	g, err := parapll.LoadGraph(graphPath)
	if err != nil {
		fatalf("loading graph: %v", err)
	}
	var seed *label.Index
	if indexPath != "" {
		if seed, err = fileio.LoadIndex(indexPath); err != nil {
			fatalf("loading index: %v", err)
		}
	}
	var pipe *compact.Pipeline
	t0 := time.Now()
	pipe, err = compact.Open(compact.Options{
		Dir:          walDir,
		Graph:        g,
		Index:        seed,
		CompactEvery: compactEvery,
		Threads:      compactThreads,
		Tracer:       srv.Tracer,
		OnFsync:      onFsync, // feeds the watchdog's wal_fsync_p99 window
		OnPublish: func(rep compact.Report) {
			gen, err := srv.Reload(pipe.IndexPath())
			if err != nil {
				fmt.Fprintf(os.Stderr, "parapll-server: publishing compacted checkpoint: %v\n", err)
				return
			}
			fmt.Printf("compaction published: generation %d (%s of %d records, swap %s)\n",
				gen, rep.Mode, rep.Folded, rep.SwapTime.Round(time.Microsecond))
		},
		Logf: func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, "parapll-server: "+format+"\n", args...)
		},
	})
	if err != nil {
		fatalf("opening living-graph pipeline: %v", err)
	}
	srv.SetUpdater(pipe) // before Publish: snapshots must query the pipeline
	idx, err := fileio.LoadIndex(pipe.IndexPath())
	if err != nil {
		fatalf("loading checkpoint index: %v", err)
	}
	gen := srv.Publish(idx, nil, pipe.IndexPath())
	st := pipe.Stats()
	fmt.Printf("ready (living-graph): generation %d  (n=%d, wal=%d records, compact-every=%d) in %.2fs\n",
		gen, idx.NumVertices(), st.WALRecords, compactEvery, time.Since(t0).Seconds())
	// A WAL already past the threshold (accumulated while down) should
	// not wait for the next insert to fold.
	if compactEvery > 0 && st.WALRecords >= compactEvery {
		go func() {
			if _, err := pipe.Compact(); err != nil {
				fmt.Fprintf(os.Stderr, "parapll-server: boot compaction: %v\n", err)
			}
		}()
	}
}

// prepare loads or builds the serving artifacts. It runs off the main
// goroutine; failures are fatal because the server cannot become ready
// without an index.
func prepare(indexPath, graphPath string, paths bool, threads int) (*parapll.Index, *pathidx.Index, string) {
	var idx *parapll.Index
	var err error
	source := indexPath
	if indexPath != "" {
		t0 := time.Now()
		idx, err = fileio.LoadIndex(indexPath)
		if err != nil {
			fatalf("loading index: %v", err)
		}
		fmt.Printf("opened %s in %.1fms (format=%s, mmap=%v)\n",
			indexPath, float64(time.Since(t0).Microseconds())/1e3, idx.Format(), idx.Mapped())
	} else {
		g, err := parapll.LoadGraph(graphPath)
		if err != nil {
			fatalf("loading graph: %v", err)
		}
		t0 := time.Now()
		prog := &parapll.BuildProgress{}
		stopLog := logProgress(prog, t0)
		idx = parapll.Build(g, parapll.Options{Threads: threads, Policy: parapll.Dynamic, Progress: prog})
		stopLog()
		fmt.Printf("indexed %d vertices in %.2fs\n", g.NumVertices(), time.Since(t0).Seconds())
		source = graphPath
	}

	var pidx *pathidx.Index
	if paths {
		g, err := parapll.LoadGraph(graphPath)
		if err != nil {
			fatalf("loading graph: %v", err)
		}
		t0 := time.Now()
		pidx = pathidx.Build(g, pathidx.Options{Threads: threads, Policy: core.Dynamic})
		fmt.Printf("path index built in %.2fs\n", time.Since(t0).Seconds())
	}
	return idx, pidx, source
}

// logProgress samples prog every 2s and prints a one-line status —
// including the average root rate and an ETA — until the returned stop
// function is called. Quiet for fast builds: nothing is printed before
// the first tick.
func logProgress(prog *parapll.BuildProgress, start time.Time) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(2 * time.Second)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				s := prog.Snapshot()
				elapsed := time.Since(start)
				line := fmt.Sprintf("indexing: %d/%d roots, %d labels, %.0f roots/s",
					s.RootsDone, s.TotalRoots, s.LabelsAdded, s.Rate(elapsed))
				if eta, ok := s.ETA(elapsed); ok {
					line += fmt.Sprintf(", ETA %s", eta.Round(time.Second))
				}
				fmt.Fprintln(os.Stderr, line)
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "parapll-server: "+format+"\n", args...)
	os.Exit(1)
}
