// parapll-server serves a built index as an HTTP JSON API — distance
// queries, batches, optional path reconstruction, stats, and the
// observability endpoints /metrics and /healthz.
//
// Usage:
//
//	parapll-server -index g.idx -addr :8080
//	parapll-server -graph g.bin -addr :8080            # index on startup
//	parapll-server -graph g.bin -paths -addr :8080     # also serve /path
//	parapll-server -index g.idx -pprof -addr :8080     # + /debug/pprof/
//
// Endpoints: GET /query?s=&t=   POST /batch   GET /path?s=&t=
// GET /knn?s=&k=   GET /stats   GET /metrics   GET /healthz
// and, with -pprof, the standard net/http/pprof handlers under
// /debug/pprof/ (opt-in: profiling endpoints leak internals and cost
// CPU, so they stay off unless asked for).
package main

import (
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"parapll"
	"parapll/internal/core"
	"parapll/internal/fileio"
	"parapll/internal/pathidx"
	"parapll/internal/server"
)

func main() {
	var (
		indexPath = flag.String("index", "", "pre-built index file (from parapll-index)")
		graphPath = flag.String("graph", "", "graph file; indexed at startup if -index is not given")
		addr      = flag.String("addr", "127.0.0.1:8080", "listen address")
		threads   = flag.Int("threads", 0, "indexing threads (0 = all cores)")
		paths     = flag.Bool("paths", false, "also build a path index and serve /path (needs -graph)")
		pprofOn   = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	)
	flag.Parse()

	var idx *parapll.Index
	var err error
	switch {
	case *indexPath != "":
		idx, err = fileio.LoadIndex(*indexPath)
		if err != nil {
			fatalf("loading index: %v", err)
		}
	case *graphPath != "":
		g, err := parapll.LoadGraph(*graphPath)
		if err != nil {
			fatalf("loading graph: %v", err)
		}
		t0 := time.Now()
		prog := &parapll.BuildProgress{}
		stopLog := logProgress(prog)
		idx = parapll.Build(g, parapll.Options{Threads: *threads, Policy: parapll.Dynamic, Progress: prog})
		stopLog()
		fmt.Printf("indexed %d vertices in %.2fs\n", g.NumVertices(), time.Since(t0).Seconds())
	default:
		fatalf("need -index or -graph")
	}

	var pidx *pathidx.Index
	if *paths {
		if *graphPath == "" {
			fatalf("-paths needs -graph")
		}
		g, err := parapll.LoadGraph(*graphPath)
		if err != nil {
			fatalf("loading graph: %v", err)
		}
		t0 := time.Now()
		pidx = pathidx.Build(g, pathidx.Options{Threads: *threads, Policy: core.Dynamic})
		fmt.Printf("path index built in %.2fs\n", time.Since(t0).Seconds())
	}

	srv := server.New(idx, pidx)
	handler := http.Handler(srv)
	if *pprofOn {
		mux := http.NewServeMux()
		mux.Handle("/", srv)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}

	fmt.Printf("serving on http://%s  (n=%d, entries=%d, LN=%.1f, paths=%v, pprof=%v)\n",
		*addr, idx.NumVertices(), idx.NumEntries(), idx.AvgLabelSize(), pidx != nil, *pprofOn)
	if err := http.ListenAndServe(*addr, handler); err != nil {
		fatalf("%v", err)
	}
}

// logProgress samples prog every 2s and prints a one-line status until
// the returned stop function is called. Quiet for fast builds: nothing
// is printed before the first tick.
func logProgress(prog *parapll.BuildProgress) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(2 * time.Second)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				s := prog.Snapshot()
				fmt.Fprintf(os.Stderr, "indexing: %d/%d roots, %d labels, %d work ops\n",
					s.RootsDone, s.TotalRoots, s.LabelsAdded, s.WorkOps)
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "parapll-server: "+format+"\n", args...)
	os.Exit(1)
}
