// Benchmarks regenerating every table and figure of the paper's
// evaluation at a reduced scale (one per table/figure, named after it),
// plus microbenchmarks and the ablations DESIGN.md calls out. Run the
// full-size experiments with cmd/parapll-bench -scale 1.0.
package parapll_test

import (
	"fmt"
	"io"
	"testing"

	"parapll"
	"parapll/internal/bench"
	"parapll/internal/cluster"
	"parapll/internal/core"
	"parapll/internal/gen"
	"parapll/internal/graph"
	"parapll/internal/label"
	"parapll/internal/landmark"
	"parapll/internal/order"
	"parapll/internal/pll"
	"parapll/internal/sssp"
)

// benchConfig is the reduced experiment grid used by the table/figure
// benchmarks: small enough for `go test -bench=.`, wide enough to cover
// every code path the full runs use.
func benchConfig() bench.Config {
	return bench.Config{
		Scale:      0.01,
		Datasets:   []string{"Wiki-Vote", "Gnutella", "DE-USA"},
		Threads:    []int{1, 2, 4},
		Nodes:      []int{1, 2, 3},
		SyncCounts: []int{1, 4, 16},
		Queries:    200,
	}
}

func runTable(b *testing.B, run func(bench.Config) (*bench.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		table, err := run(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if err := table.WriteText(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3 regenerates Table 3 (static assignment policy).
func BenchmarkTable3(b *testing.B) { runTable(b, bench.RunTable3) }

// BenchmarkTable4 regenerates Table 4 (dynamic assignment policy).
func BenchmarkTable4(b *testing.B) { runTable(b, bench.RunTable4) }

// BenchmarkTable5 regenerates Table 5 (cluster scaling, c=1).
func BenchmarkTable5(b *testing.B) {
	runTable(b, func(cfg bench.Config) (*bench.Table, error) {
		return bench.RunTable5(cfg, 2)
	})
}

// BenchmarkFig5 regenerates Figure 5 (degree distributions).
func BenchmarkFig5(b *testing.B) { runTable(b, bench.RunFig5) }

// BenchmarkFig6 regenerates Figure 6 (label-addition CDFs).
func BenchmarkFig6(b *testing.B) {
	runTable(b, func(cfg bench.Config) (*bench.Table, error) {
		return bench.RunFig6(cfg, 4)
	})
}

// BenchmarkFig7 regenerates Figure 7 (sync-frequency sweep on a
// 3-node simulated cluster with comm/comp breakdown).
func BenchmarkFig7(b *testing.B) {
	runTable(b, func(cfg bench.Config) (*bench.Table, error) {
		return bench.RunFig7(cfg, 3, 1)
	})
}

// BenchmarkQueryComparison regenerates the introduction's index-free vs
// indexed query latency comparison.
func BenchmarkQueryComparison(b *testing.B) {
	runTable(b, func(cfg bench.Config) (*bench.Table, error) {
		return bench.RunQueryComparison(cfg, 4)
	})
}

// BenchmarkSyncPipeline regenerates the sync-pipeline comparison
// (blocking vs overlapped cluster builds at each sync count, with
// compression accounting) on a 3-node simulated cluster.
func BenchmarkSyncPipeline(b *testing.B) {
	runTable(b, func(cfg bench.Config) (*bench.Table, error) {
		table, _, err := bench.RunSync(cfg, 3, 2)
		return table, err
	})
}

// --- Microbenchmarks ---

func epinions(b *testing.B, scale float64) *parapll.Graph {
	b.Helper()
	g, err := parapll.GenerateDataset("Epinions", scale)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkIndexQuery measures one indexed distance query.
func BenchmarkIndexQuery(b *testing.B) {
	g := epinions(b, 0.05)
	idx := parapll.Build(g, parapll.Options{Policy: parapll.Dynamic})
	n := g.NumVertices()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Query(parapll.Vertex(i%n), parapll.Vertex((i*31)%n))
	}
}

// BenchmarkDirectQuery measures the index-free Dijkstra query baseline.
func BenchmarkDirectQuery(b *testing.B) {
	g := epinions(b, 0.05)
	n := g.NumVertices()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parapll.QueryDirect(g, parapll.Vertex(i%n), parapll.Vertex((i*31)%n))
	}
}

// BenchmarkBuildSerialVsParallel compares the indexing stage across
// engines on one dataset.
func BenchmarkBuildSerialVsParallel(b *testing.B) {
	g := epinions(b, 0.02)
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			parapll.BuildSerial(g, parapll.Options{})
		}
	})
	b.Run("parallel-static", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			parapll.Build(g, parapll.Options{Threads: 4, Policy: parapll.Static})
		}
	})
	b.Run("parallel-dynamic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			parapll.Build(g, parapll.Options{Threads: 4, Policy: parapll.Dynamic})
		}
	})
}

// --- Ablation benchmarks (design choices called out in DESIGN.md) ---

// BenchmarkAblationStore compares the lock-free published-length label
// store against the global-RWMutex alternative under parallel indexing.
func BenchmarkAblationStore(b *testing.B) {
	g := gen.ChungLu(2000, 8000, 2.2, 17)
	opt := core.Options{Threads: 4, Policy: core.Dynamic}
	b.Run("lockfree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.Build(g, opt)
		}
	})
	b.Run("rwmutex", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			store := core.NewRWLockedStore(g.NumVertices())
			core.BuildInto(g, store, opt)
			store.Finalize()
		}
	})
}

// BenchmarkAblationHeap compares the indexed 4-ary decrease-key heap
// against lazy-deletion binary heap inside the pruned Dijkstra.
func BenchmarkAblationHeap(b *testing.B) {
	g := gen.ChungLu(2000, 8000, 2.2, 18)
	b.Run("indexed-4ary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pll.Build(g, pll.Options{})
		}
	})
	b.Run("lazy-binary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pll.Build(g, pll.Options{LazyHeap: true})
		}
	})
}

// BenchmarkAblationOrder compares computing-sequence policies by the
// index size they produce (reported as entries/op) and their build time.
func BenchmarkAblationOrder(b *testing.B) {
	social := gen.ChungLu(2000, 8000, 2.2, 19)
	road := gen.RoadGrid(45, 45, 3900, 19)
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{{"social", social}, {"road", road}} {
		for _, ord := range []struct {
			name  string
			order []graph.Vertex
		}{
			{"degree", order.Degree(tc.g)},
			{"psi", order.PsiSample(tc.g, 8, 1)},
			{"random", order.Random(tc.g, 1)},
		} {
			b.Run(tc.name+"/"+ord.name, func(b *testing.B) {
				var entries int64
				for i := 0; i < b.N; i++ {
					idx := pll.Build(tc.g, pll.Options{Order: ord.order})
					entries = idx.NumEntries()
				}
				b.ReportMetric(float64(entries), "entries")
			})
		}
	}
}

// BenchmarkAblationChunk compares dynamic-policy fetch granularities.
func BenchmarkAblationChunk(b *testing.B) {
	g := gen.ChungLu(2000, 8000, 2.2, 20)
	for _, chunk := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("chunk-%d", chunk), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.Build(g, core.Options{Threads: 4, Policy: core.Dynamic, Chunk: chunk})
			}
		})
	}
}

// BenchmarkAblationRelabel compares the direct build against the
// rank-relabeled build (hub ids become small dense ints — locality and
// compression win, at the cost of two relabeling passes).
func BenchmarkAblationRelabel(b *testing.B) {
	g := gen.ChungLu(2000, 8000, 2.2, 26)
	opt := core.Options{Threads: 4, Policy: core.Dynamic}
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.Build(g, opt)
		}
	})
	b.Run("rank-relabeled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.BuildRelabeled(g, opt)
		}
	})
}

// BenchmarkAblationPartition compares inter-node partition strategies by
// per-node work skew on a simulated 4-node cluster (the paper fixes
// round-robin; blocks concentrate hub roots on node 0).
func BenchmarkAblationPartition(b *testing.B) {
	g := gen.ChungLu(1500, 6000, 2.2, 22)
	for _, p := range []cluster.Partition{
		cluster.PartitionRoundRobin, cluster.PartitionBlocks, cluster.PartitionRandom,
	} {
		b.Run(p.String(), func(b *testing.B) {
			var skew float64
			for i := 0; i < b.N; i++ {
				_, sts, err := cluster.RunLocal(g, 4, cluster.Options{
					Threads: 1, SyncCount: 1, Partition: p, Seed: 7,
				})
				if err != nil {
					b.Fatal(err)
				}
				var max, sum int64
				for _, s := range sts {
					sum += s.WorkOps
					if s.WorkOps > max {
						max = s.WorkOps
					}
				}
				skew = float64(max) * 4 / float64(sum)
			}
			b.ReportMetric(skew, "work-skew") // 1.0 = perfectly balanced
		})
	}
}

// BenchmarkLandmarkVsPLL compares the approximate landmark baseline
// (the paper's [18]) against the exact 2-hop index: build time, query
// time, and (for landmarks) the mean relative overestimate.
func BenchmarkLandmarkVsPLL(b *testing.B) {
	g := gen.ChungLu(2000, 8000, 2.2, 25)
	n := g.NumVertices()
	b.Run("build/pll", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.Build(g, core.Options{Threads: 4, Policy: core.Dynamic})
		}
	})
	b.Run("build/landmark-16", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			landmark.Build(g, landmark.Options{K: 16, Strategy: landmark.SelectDegree})
		}
	})
	idx := core.Build(g, core.Options{Threads: 4, Policy: core.Dynamic})
	lm := landmark.Build(g, landmark.Options{K: 16, Strategy: landmark.SelectDegree})
	b.Run("query/pll", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			idx.Query(graph.Vertex(i%n), graph.Vertex((i*31)%n))
		}
	})
	b.Run("query/landmark-16", func(b *testing.B) {
		var overestimate, count float64
		for i := 0; i < b.N; i++ {
			s, t := graph.Vertex(i%n), graph.Vertex((i*31)%n)
			approx := lm.Upper(s, t)
			if i < 1000 { // bound the exactness audit
				exact := idx.Query(s, t)
				if exact != graph.Inf && exact > 0 {
					overestimate += float64(approx-exact) / float64(exact)
					count++
				}
			}
		}
		if count > 0 {
			b.ReportMetric(overestimate/count, "rel-err")
		}
	})
}

// BenchmarkAblationPruneQuery compares the hub-scatter prune query used
// during construction (via a normal build) against a no-pruning build
// (what the index would cost without PLL's pruning): plain Dijkstra from
// every root, measured through label volume.
func BenchmarkAblationPruneQuery(b *testing.B) {
	g := gen.ChungLu(800, 3200, 2.2, 21)
	b.Run("pruned", func(b *testing.B) {
		var entries int64
		for i := 0; i < b.N; i++ {
			entries = pll.Build(g, pll.Options{}).NumEntries()
		}
		b.ReportMetric(float64(entries), "entries")
	})
	b.Run("unpruned-full-dijkstra", func(b *testing.B) {
		var entries int64
		for i := 0; i < b.N; i++ {
			// Full APSP labeling: every vertex labels every reachable
			// vertex. This is the O(n^2) strawman the paper's intro
			// dismisses.
			lists := make([][]label.Entry, g.NumVertices())
			for v := 0; v < g.NumVertices(); v++ {
				d := sssp.Dijkstra(g, graph.Vertex(v))
				for u, du := range d {
					if du != graph.Inf {
						lists[u] = append(lists[u], label.Entry{Hub: graph.Vertex(v), D: du})
					}
				}
			}
			entries = label.NewIndexFromLists(lists).NumEntries()
		}
		b.ReportMetric(float64(entries), "entries")
	})
}
